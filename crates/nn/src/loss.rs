//! Loss functions. Each returns `(mean loss, d loss / d logits)` so the
//! training loop can immediately start the backward pass.

use fedca_tensor::Tensor;

/// Numerically-stable softmax cross-entropy over logits `[N, C]` with class
/// labels. The gradient is already divided by the batch size (mean
/// reduction, PyTorch default).
///
/// # Panics
/// Panics if the shapes disagree or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
    let mut grad = Tensor::zeros([0]);
    let loss = softmax_cross_entropy_into(logits, labels, &mut grad);
    (loss, grad)
}

/// Allocation-free variant of [`softmax_cross_entropy`]: writes the logits
/// gradient into `grad` (resized in place, reusing its buffer) and returns
/// the mean loss. The training hot loop keeps one persistent `grad` tensor
/// across iterations.
///
/// # Panics
/// Panics if the shapes disagree or a label is out of range.
pub fn softmax_cross_entropy_into(logits: &Tensor, labels: &[usize], grad: &mut Tensor) -> f32 {
    assert_eq!(logits.shape().rank(), 2, "logits must be [N, C]");
    let (n, c) = (logits.dims()[0], logits.dims()[1]);
    assert_eq!(n, labels.len(), "batch size mismatch");
    assert!(n > 0, "empty batch");
    grad.resize(&[n, c]);
    let ld = logits.as_slice();
    let gd = grad.as_mut_slice();
    let mut total = 0.0f64;
    let inv_n = 1.0 / n as f32;
    for i in 0..n {
        let row = &ld[i * c..(i + 1) * c];
        let label = labels[i];
        assert!(label < c, "label {label} out of range for {c} classes");
        let maxv = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - maxv).exp();
        }
        let log_denom = denom.ln();
        total += (log_denom - (row[label] - maxv)) as f64;
        let grow = &mut gd[i * c..(i + 1) * c];
        for (j, cell) in grow.iter_mut().enumerate() {
            let p = (row[j] - maxv).exp() / denom;
            *cell = (p - if j == label { 1.0 } else { 0.0 }) * inv_n;
        }
    }
    (total / n as f64) as f32
}

/// Mean-squared-error over `[N, C]` predictions and targets, mean-reduced
/// over all elements.
pub fn mse_loss(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.dims(), target.dims(), "mse shape mismatch");
    let n = pred.len().max(1);
    let mut grad = Tensor::zeros(pred.shape().clone());
    let mut total = 0.0f64;
    let scale = 2.0 / n as f32;
    for ((g, &p), &t) in grad
        .as_mut_slice()
        .iter_mut()
        .zip(pred.as_slice())
        .zip(target.as_slice())
    {
        let d = p - t;
        total += (d as f64) * (d as f64);
        *g = scale * d;
    }
    ((total / n as f64) as f32, grad)
}

/// Fraction of rows whose argmax equals the label.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> f32 {
    let preds = logits.argmax_rows();
    assert_eq!(preds.len(), labels.len(), "batch size mismatch");
    if preds.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c_loss() {
        let logits = Tensor::zeros([2, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient: (1/C - onehot)/N
        assert!((grad.at(&[0, 0]) - (0.25 - 1.0) / 2.0).abs() < 1e-6);
        assert!((grad.at(&[0, 1]) - 0.25 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn confident_correct_prediction_has_small_loss() {
        let logits = Tensor::from_vec([1, 3], vec![10.0, -10.0, -10.0]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss < 1e-6);
        let (wrong_loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(wrong_loss > 10.0);
    }

    #[test]
    fn cross_entropy_grad_rows_sum_to_zero() {
        let logits = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        for i in 0..2 {
            let s: f32 = grad.as_slice()[i * 3..(i + 1) * 3].iter().sum();
            assert!(s.abs() < 1e-6, "row {i} grad sums to {s}");
        }
    }

    #[test]
    fn stable_for_large_logits() {
        let logits = Tensor::from_vec([1, 2], vec![1000.0, -1000.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss.is_finite() && loss < 1e-6);
        assert!(grad.all_finite());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_label() {
        let _ = softmax_cross_entropy(&Tensor::zeros([1, 3]), &[3]);
    }

    #[test]
    fn into_variant_matches_and_reuses_buffer() {
        let logits = Tensor::from_vec([2, 3], vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[2, 0]);
        let mut buf = Tensor::zeros([2, 3]); // warm buffer of the right size
        let cap = buf.capacity();
        let loss2 = softmax_cross_entropy_into(&logits, &[2, 0], &mut buf);
        assert_eq!(loss, loss2);
        assert_eq!(buf, grad);
        assert_eq!(buf.capacity(), cap, "refill must not reallocate");
    }

    #[test]
    fn mse_basics() {
        let p = Tensor::from_vec([2], vec![1.0, 3.0]);
        let t = Tensor::from_vec([2], vec![0.0, 1.0]);
        let (loss, grad) = mse_loss(&p, &t);
        assert!((loss - 2.5).abs() < 1e-6); // (1 + 4)/2
        assert_eq!(grad.as_slice(), &[1.0, 2.0]); // 2d/N
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Tensor::from_vec([3, 2], vec![1.0, 0.0, 0.0, 1.0, 1.0, 0.0]);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-6);
    }
}
