//! The `Model` wrapper: a layer graph plus the flat-vector plumbing FL needs.
//!
//! FL exchanges *flat update vectors* annotated with per-parameter spans.
//! `Model` owns the canonical mapping between the layer graph's named
//! parameters and those flat vectors; everything in `fedca-core` (progress
//! metrics, aggregation, eager transmission) operates on the flat form.
//!
//! `Model` also owns the [`Workspace`] scratch arena threaded through every
//! layer's forward/backward. Callers keep the plain `forward(&x)` /
//! `backward(&g)` API; tensors those calls return should be handed back via
//! [`Model::recycle`] once consumed so the warm pool covers the next
//! iteration without heap traffic.

use crate::layer::Layer;
use crate::workspace::Workspace;
use fedca_tensor::Tensor;
use std::ops::Range;

/// Description of one named parameter's slice within the flat vector.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParamSpan {
    /// Fully-qualified parameter name (e.g. `conv2.weight`).
    pub name: String,
    /// Element range within the flat vector.
    pub range: Range<usize>,
}

/// A trainable model: a boxed layer graph with flat-parameter accessors.
pub struct Model {
    net: Box<dyn Layer>,
    spans: Vec<ParamSpan>,
    total: usize,
    ws: Workspace,
}

impl Model {
    /// Wraps a layer graph, capturing the parameter layout.
    pub fn new(net: impl Layer + 'static) -> Self {
        let net: Box<dyn Layer> = Box::new(net);
        let mut spans = Vec::new();
        let mut offset = 0usize;
        for p in net.params() {
            let len = p.len();
            spans.push(ParamSpan {
                name: p.name().to_string(),
                range: offset..offset + len,
            });
            offset += len;
        }
        Model {
            net,
            spans,
            total: offset,
            ws: Workspace::new(),
        }
    }

    /// Forward pass. Recycle the returned tensor with [`Model::recycle`]
    /// when done with it.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.net.forward(x, &mut self.ws)
    }

    /// Backward pass (gradients accumulate into the parameters). Recycle
    /// the returned input-gradient when done with it.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.net.backward(grad_out, &mut self.ws)
    }

    /// Returns a tensor produced by [`Model::forward`]/[`Model::backward`]
    /// to the internal scratch pool for reuse.
    pub fn recycle(&mut self, t: Tensor) {
        self.ws.give(t);
    }

    /// `(takes, misses)` counters of the internal scratch pool; in steady
    /// state `misses` stops growing.
    pub fn workspace_stats(&self) -> (u64, u64) {
        self.ws.stats()
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.net.zero_grad();
    }

    /// Switches train/eval mode (affects batch-norm statistics).
    pub fn set_training(&mut self, training: bool) {
        self.net.set_training(training);
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.total
    }

    /// The parameter layout: name and flat range per parameter, in
    /// deterministic traversal order.
    pub fn spans(&self) -> &[ParamSpan] {
        &self.spans
    }

    /// Copies all parameters into one flat vector (traversal order).
    pub fn flat_params(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.total);
        self.flat_params_into(&mut out);
        out
    }

    /// Copies all parameters into `out` (traversal order), reusing its
    /// allocation. `out` is cleared first and ends up `num_params()` long.
    pub fn flat_params_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(self.total);
        for p in self.net.params() {
            out.extend_from_slice(p.value.as_slice());
        }
    }

    /// Overwrites all parameters from a flat vector.
    ///
    /// # Panics
    /// Panics if `flat.len() != num_params()`.
    pub fn set_flat_params(&mut self, flat: &[f32]) {
        assert_eq!(flat.len(), self.total, "flat parameter length mismatch");
        let mut offset = 0usize;
        self.net.for_each_param(&mut |p| {
            let n = p.len();
            p.value
                .as_mut_slice()
                .copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        });
        debug_assert_eq!(offset, self.total);
    }

    /// Copies all gradients into one flat vector (traversal order).
    pub fn flat_grads(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.total);
        for p in self.net.params() {
            out.extend_from_slice(p.grad.as_slice());
        }
        out
    }

    /// Applies one optimizer step without collecting parameters into a
    /// temporary `Vec` (the visitor walks them in traversal order, tracking
    /// the flat offset for the FedProx anchor).
    pub fn step(&mut self, opt: &crate::optim::Sgd, anchor: Option<&[f32]>) {
        if opt.prox_mu > 0.0 {
            let anchor = anchor.expect("FedProx step requires the round-start anchor weights");
            assert_eq!(anchor.len(), self.total, "anchor length mismatch");
        }
        let mut offset = 0usize;
        self.net.for_each_param(&mut |p| {
            let n = p.len();
            opt.step_param(p, anchor.map(|a| &a[offset..offset + n]));
            offset += n;
        });
        debug_assert_eq!(offset, self.total);
    }

    /// Direct access to the wrapped layer graph.
    pub fn net_mut(&mut self) -> &mut dyn Layer {
        self.net.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu, Sequential};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Model {
        let mut rng = StdRng::seed_from_u64(seed);
        Model::new(
            Sequential::new()
                .push(Linear::new("fc1", 3, 4, &mut rng))
                .push(Relu::new())
                .push(Linear::new("fc2", 4, 2, &mut rng)),
        )
    }

    #[test]
    fn spans_cover_the_flat_vector_exactly() {
        let m = tiny_model(1);
        assert_eq!(m.num_params(), 3 * 4 + 4 + 4 * 2 + 2);
        let mut expected_start = 0;
        for span in m.spans() {
            assert_eq!(span.range.start, expected_start, "gap before {}", span.name);
            expected_start = span.range.end;
        }
        assert_eq!(expected_start, m.num_params());
        let names: Vec<_> = m.spans().iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]
        );
    }

    #[test]
    fn flat_params_round_trip() {
        let mut m = tiny_model(2);
        let orig = m.flat_params();
        let modified: Vec<f32> = orig.iter().map(|v| v + 1.0).collect();
        m.set_flat_params(&modified);
        assert_eq!(m.flat_params(), modified);
        m.set_flat_params(&orig);
        assert_eq!(m.flat_params(), orig);
    }

    #[test]
    fn flat_params_into_reuses_the_buffer() {
        let m = tiny_model(5);
        let mut buf = vec![f32::NAN; 3]; // stale contents must be discarded
        m.flat_params_into(&mut buf);
        assert_eq!(buf, m.flat_params());
        let cap = buf.capacity();
        m.flat_params_into(&mut buf);
        assert_eq!(buf.capacity(), cap, "refill must not reallocate");
        assert_eq!(buf, m.flat_params());
    }

    #[test]
    fn same_seed_same_model() {
        let a = tiny_model(7);
        let b = tiny_model(7);
        assert_eq!(a.flat_params(), b.flat_params());
        let c = tiny_model(8);
        assert_ne!(a.flat_params(), c.flat_params());
    }

    #[test]
    fn training_updates_move_flat_params() {
        let mut m = tiny_model(3);
        let before = m.flat_params();
        let x = Tensor::randn([4, 3], 1.0, &mut StdRng::seed_from_u64(9));
        let logits = m.forward(&x);
        let (_, grad) = crate::loss::softmax_cross_entropy(&logits, &[0, 1, 0, 1]);
        m.zero_grad();
        m.backward(&grad);
        m.step(&crate::optim::Sgd::new(0.1, 0.0), None);
        let after = m.flat_params();
        assert_ne!(before, after);
        assert_eq!(before.len(), after.len());
    }

    #[test]
    fn recycled_tensors_feed_the_next_iteration() {
        let mut m = tiny_model(6);
        let x = Tensor::randn([4, 3], 1.0, &mut StdRng::seed_from_u64(10));
        for _ in 0..3 {
            let y = m.forward(&x);
            let dx = m.backward(&y);
            m.recycle(y);
            m.recycle(dx);
        }
        let (_, misses_before) = m.workspace_stats();
        let y = m.forward(&x);
        let dx = m.backward(&y);
        m.recycle(y);
        m.recycle(dx);
        let (_, misses_after) = m.workspace_stats();
        assert_eq!(misses_before, misses_after, "warm pass must not miss");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn set_flat_params_rejects_bad_length() {
        let mut m = tiny_model(4);
        m.set_flat_params(&[0.0; 3]);
    }
}
