//! The paper's three model families, plus a tiny MLP for tests.
//!
//! Layer names reproduce the paper's figures: the CNN exposes
//! `conv1/conv2/fc1/fc2/fc3` (Fig. 3a references `fc2.weight`,
//! `conv2.weight`), the LSTM exposes `rnn.weight_ih_l0 … rnn.bias_hh_l1`
//! plus an `fc` head (Fig. 3b references `rnn.weight_hh_l0`,
//! `rnn.bias_ih_l1`), and the WideResNet exposes
//! `conv{2,3,4}.<block>.residual.<i>.{weight,bias}` groups (Fig. 3c
//! references `conv3.0.residual.0.bias`, `conv4.2.residual.6.weight`).
//!
//! Each family has a `Config` with two presets: `paper()` matches the
//! paper's scale where tractable, and `scaled()` is the CI-friendly default
//! used by the experiment harness (see DESIGN.md §4 for the substitution
//! argument; the network model compensates for the smaller WRN byte size).

use crate::layers::*;
use crate::model::Model;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// LeNet-5-style CNN configuration (paper: CIFAR-10, ~60K params).
#[derive(Clone, Debug)]
pub struct CnnConfig {
    /// Input channels.
    pub in_channels: usize,
    /// Input spatial side (square images).
    pub input_hw: usize,
    /// Output classes.
    pub classes: usize,
}

impl CnnConfig {
    /// Paper scale: 3×32×32, 10 classes (CIFAR-10-like).
    pub fn paper() -> Self {
        CnnConfig {
            in_channels: 3,
            input_hw: 32,
            classes: 10,
        }
    }

    /// Reduced scale for fast experiments: 3×16×16, 10 classes.
    pub fn scaled() -> Self {
        CnnConfig {
            in_channels: 3,
            input_hw: 16,
            classes: 10,
        }
    }

    fn flat_after_convs(&self) -> usize {
        // conv1 (k5): s-4; pool2: /2; conv2 (k5): -4; pool2: /2.
        let s1 = self.input_hw - 4;
        assert!(
            s1.is_multiple_of(2),
            "CNN input size {} unsupported",
            self.input_hw
        );
        let s2 = s1 / 2;
        assert!(s2 > 4, "CNN input size {} too small", self.input_hw);
        let s3 = s2 - 4;
        assert!(
            s3.is_multiple_of(2),
            "CNN input size {} unsupported",
            self.input_hw
        );
        16 * (s3 / 2) * (s3 / 2)
    }
}

/// Builds the LeNet-5-style CNN.
pub fn cnn(cfg: &CnnConfig, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let flat = cfg.flat_after_convs();
    Model::new(
        Sequential::new()
            .push(Conv2d::new("conv1", cfg.in_channels, 6, 5, 1, 0, &mut rng))
            .push(Relu::new())
            .push(MaxPool2d::new(2))
            .push(Conv2d::new("conv2", 6, 16, 5, 1, 0, &mut rng))
            .push(Relu::new())
            .push(MaxPool2d::new(2))
            .push(Flatten::new())
            .push(Linear::new("fc1", flat, 120, &mut rng))
            .push(Relu::new())
            .push(Linear::new("fc2", 120, 84, &mut rng))
            .push(Relu::new())
            .push(Linear::new("fc3", 84, cfg.classes, &mut rng)),
    )
}

/// Two-layer LSTM configuration (paper: KWS keyword spotting, ~50K params).
#[derive(Clone, Debug)]
pub struct LstmConfig {
    /// Per-timestep feature width.
    pub input_size: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Stacked layers.
    pub num_layers: usize,
    /// Output classes.
    pub classes: usize,
}

impl LstmConfig {
    /// Paper scale: ~50K params, 12 keyword classes.
    pub fn paper() -> Self {
        LstmConfig {
            input_size: 10,
            hidden: 64,
            num_layers: 2,
            classes: 12,
        }
    }

    /// Reduced scale for fast experiments.
    pub fn scaled() -> Self {
        LstmConfig {
            input_size: 8,
            hidden: 32,
            num_layers: 2,
            classes: 12,
        }
    }
}

/// Builds the stacked-LSTM classifier (`rnn.*` + `fc.*`).
pub fn lstm(cfg: &LstmConfig, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    Model::new(
        Sequential::new()
            .push(Lstm::new(
                "rnn",
                cfg.input_size,
                cfg.hidden,
                cfg.num_layers,
                &mut rng,
            ))
            .push(Linear::new("fc", cfg.hidden, cfg.classes, &mut rng)),
    )
}

/// WideResNet-style configuration (paper: WRN-28-10, 36M params on
/// CIFAR-100; here depth and width are configurable).
#[derive(Clone, Debug)]
pub struct WrnConfig {
    /// Base width (group widths are `w`, `2w`, `4w`).
    pub width: usize,
    /// Residual blocks per group (WRN-28 has 4).
    pub blocks_per_group: usize,
    /// Input channels.
    pub in_channels: usize,
    /// Input spatial side.
    pub input_hw: usize,
    /// Output classes.
    pub classes: usize,
}

impl WrnConfig {
    /// Closest-tractable "paper" scale: WRN-28 depth (4 blocks/group) at
    /// width 16 on 32×32 inputs, 100 classes. (~2.8M params; the full
    /// WRN-28-10's 36M is emulated at the *network* layer via the byte-size
    /// multiplier — see `fedca-sim`.)
    pub fn paper() -> Self {
        WrnConfig {
            width: 16,
            blocks_per_group: 4,
            in_channels: 3,
            input_hw: 32,
            classes: 100,
        }
    }

    /// Reduced scale for fast experiments: 2 blocks/group, width 8,
    /// 16×16 inputs, 20 classes.
    pub fn scaled() -> Self {
        WrnConfig {
            width: 8,
            blocks_per_group: 2,
            in_channels: 3,
            input_hw: 16,
            classes: 20,
        }
    }
}

/// One WRN group: `blocks` residual blocks named `<group>.<i>.residual.<j>`.
fn wrn_group(
    seq: Sequential,
    group: &str,
    in_c: usize,
    out_c: usize,
    stride: usize,
    blocks: usize,
    rng: &mut StdRng,
) -> Sequential {
    let mut seq = seq;
    for b in 0..blocks {
        let (bin, bstride) = if b == 0 { (in_c, stride) } else { (out_c, 1) };
        let body = Sequential::new()
            .push(Conv2d::new(
                &format!("{group}.{b}.residual.0"),
                bin,
                out_c,
                3,
                bstride,
                1,
                rng,
            ))
            .push(BatchNorm2d::new(&format!("{group}.{b}.residual.1"), out_c))
            .push(Relu::new())
            .push(Conv2d::new(
                &format!("{group}.{b}.residual.3"),
                out_c,
                out_c,
                3,
                1,
                1,
                rng,
            ))
            .push(BatchNorm2d::new(&format!("{group}.{b}.residual.4"), out_c));
        let block = if bin != out_c || bstride != 1 {
            ResidualBlock::projected(
                body,
                &format!("{group}.{b}.shortcut"),
                bin,
                out_c,
                bstride,
                rng,
            )
        } else {
            ResidualBlock::identity(body)
        };
        seq = seq.push(block).push(Relu::new());
    }
    seq
}

/// Builds the WideResNet-style residual network.
///
/// # Panics
/// Panics if `input_hw` is not divisible by 4 (two stride-2 groups).
pub fn wrn(cfg: &WrnConfig, seed: u64) -> Model {
    assert!(
        cfg.input_hw.is_multiple_of(4),
        "WRN input must be divisible by 4"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let w = cfg.width;
    let mut seq = Sequential::new()
        .push(Conv2d::new("conv1", cfg.in_channels, w, 3, 1, 1, &mut rng))
        .push(BatchNorm2d::new("bn1", w))
        .push(Relu::new());
    seq = wrn_group(seq, "conv2", w, w, 1, cfg.blocks_per_group, &mut rng);
    seq = wrn_group(seq, "conv3", w, 2 * w, 2, cfg.blocks_per_group, &mut rng);
    seq = wrn_group(
        seq,
        "conv4",
        2 * w,
        4 * w,
        2,
        cfg.blocks_per_group,
        &mut rng,
    );
    seq = seq
        .push(AvgPool2d::new())
        .push(Linear::new("fc", 4 * w, cfg.classes, &mut rng));
    Model::new(seq)
}

/// A small MLP (`fc1`/`fc2`) for unit tests and the quickstart example.
pub fn mlp(in_features: usize, hidden: usize, classes: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    Model::new(
        Sequential::new()
            .push(Linear::new("fc1", in_features, hidden, &mut rng))
            .push(Relu::new())
            .push(Linear::new("fc2", hidden, classes, &mut rng)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedca_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cnn_paper_scale_params_near_60k() {
        let m = cnn(&CnnConfig::paper(), 0);
        let n = m.num_params();
        assert!(
            (50_000..80_000).contains(&n),
            "CNN params {n} outside LeNet-5 range"
        );
        let names: Vec<_> = m.spans().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"conv2.weight"));
        assert!(names.contains(&"fc2.weight"));
    }

    #[test]
    fn cnn_forward_shape() {
        let mut m = cnn(&CnnConfig::scaled(), 1);
        let x = Tensor::randn([2, 3, 16, 16], 1.0, &mut StdRng::seed_from_u64(0));
        let y = m.forward(&x);
        assert_eq!(y.dims(), &[2, 10]);
        assert!(y.all_finite());
    }

    #[test]
    fn lstm_paper_scale_params_near_50k() {
        let m = lstm(&LstmConfig::paper(), 0);
        let n = m.num_params();
        assert!(
            (40_000..70_000).contains(&n),
            "LSTM params {n} outside paper range"
        );
        let names: Vec<_> = m.spans().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"rnn.weight_hh_l0"));
        assert!(names.contains(&"rnn.bias_ih_l1"));
    }

    #[test]
    fn lstm_forward_shape() {
        let mut m = lstm(&LstmConfig::scaled(), 1);
        let x = Tensor::randn([3, 12, 8], 1.0, &mut StdRng::seed_from_u64(0));
        let y = m.forward(&x);
        assert_eq!(y.dims(), &[3, 12]);
    }

    #[test]
    fn wrn_layer_names_match_paper_figures() {
        let m = wrn(&WrnConfig::scaled(), 0);
        let names: Vec<_> = m.spans().iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"conv3.0.residual.0.bias"), "{names:?}");
        assert!(names.contains(&"conv4.1.residual.3.weight"));
        assert!(names.contains(&"conv1.weight"));
        assert!(names.contains(&"fc.weight"));
    }

    #[test]
    fn wrn_forward_shape_and_depth() {
        let cfg = WrnConfig::scaled();
        let mut m = wrn(&cfg, 2);
        // Many independently-converging parameter tensors is what FedCA's
        // per-layer machinery needs.
        assert!(m.spans().len() >= 30, "only {} tensors", m.spans().len());
        let x = Tensor::randn([2, 3, 16, 16], 0.5, &mut StdRng::seed_from_u64(0));
        let y = m.forward(&x);
        assert_eq!(y.dims(), &[2, 20]);
        assert!(y.all_finite());
    }

    #[test]
    fn wrn_paper_preset_has_wrn28_depth() {
        let cfg = WrnConfig::paper();
        // 3 groups × 4 blocks × 2 convs + conv1 = 25 convolutions ≈ WRN-28's
        // 25 conv layers + fc.
        let m = wrn(&cfg, 3);
        let conv_weights = m
            .spans()
            .iter()
            .filter(|s| {
                s.name.ends_with("residual.0.weight") || s.name.ends_with("residual.3.weight")
            })
            .count();
        assert_eq!(conv_weights, 24);
    }

    #[test]
    fn models_train_one_step_without_nan() {
        let mut m = cnn(&CnnConfig::scaled(), 5);
        let mut rng = StdRng::seed_from_u64(6);
        let x = Tensor::randn([4, 3, 16, 16], 1.0, &mut rng);
        let logits = m.forward(&x);
        let (_, g) = crate::loss::softmax_cross_entropy(&logits, &[0, 1, 2, 3]);
        m.zero_grad();
        m.backward(&g);
        m.step(&crate::optim::Sgd::new(0.01, 0.01), None);
        assert!(m.flat_params().iter().all(|v| v.is_finite()));
    }
}
