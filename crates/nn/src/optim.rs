//! Stochastic gradient descent with weight decay and the FedProx proximal
//! term.
//!
//! FedProx ([Li et al., MLSys '20]) adds `μ/2‖w − w_global‖²` to each
//! client's loss, i.e. `μ(w − w_global)` to each gradient. The optimizer
//! takes the round's anchor weights as an optional flat slice so clients
//! don't need a second model copy per parameter.

use crate::param::Parameter;

/// Plain SGD: `w ← w − lr · (g + wd·w [+ μ(w − w_anchor)])`.
#[derive(Clone, Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
    /// L2 weight decay coefficient (coupled, PyTorch-style: added to the
    /// gradient before the update).
    pub weight_decay: f32,
    /// FedProx proximal coefficient μ; `0.0` disables the term.
    pub prox_mu: f32,
}

impl Sgd {
    /// SGD with weight decay and no proximal term.
    pub fn new(lr: f32, weight_decay: f32) -> Self {
        Sgd {
            lr,
            weight_decay,
            prox_mu: 0.0,
        }
    }

    /// Enables FedProx's proximal term with coefficient `mu`.
    pub fn with_prox(mut self, mu: f32) -> Self {
        self.prox_mu = mu;
        self
    }

    /// Applies one update step to `params`.
    ///
    /// `anchor` is the round-start flat parameter vector (required iff
    /// `prox_mu > 0`), laid out in parameter traversal order.
    ///
    /// # Panics
    /// Panics if a proximal term is configured without an anchor, or if the
    /// anchor length does not match the parameter count.
    pub fn step(&self, params: &mut [&mut Parameter], anchor: Option<&[f32]>) {
        if self.prox_mu > 0.0 {
            let total: usize = params.iter().map(|p| p.len()).sum();
            let anchor = anchor.expect("FedProx step requires the round-start anchor weights");
            assert_eq!(anchor.len(), total, "anchor length mismatch");
        }
        let mut offset = 0usize;
        for p in params.iter_mut() {
            let n = p.len();
            self.step_param(p, anchor.map(|a| &a[offset..offset + n]));
            offset += n;
        }
    }

    /// Updates a single parameter. `anchor_slice` is this parameter's slice
    /// of the round-start flat vector (required iff `prox_mu > 0`). This is
    /// the building block `Model::step` drives through its parameter
    /// visitor, avoiding the per-step `Vec<&mut Parameter>` collection.
    ///
    /// # Panics
    /// Panics if a proximal term is configured without an anchor, or if the
    /// anchor slice length does not match the parameter length.
    pub fn step_param(&self, p: &mut Parameter, anchor_slice: Option<&[f32]>) {
        let n = p.len();
        let w = p.value.as_mut_slice();
        let g = p.grad.as_slice();
        if self.prox_mu > 0.0 {
            let a = anchor_slice.expect("FedProx step requires the round-start anchor weights");
            assert_eq!(a.len(), n, "anchor length mismatch");
            for i in 0..n {
                let grad = g[i] + self.weight_decay * w[i] + self.prox_mu * (w[i] - a[i]);
                w[i] -= self.lr * grad;
            }
        } else {
            for i in 0..n {
                let grad = g[i] + self.weight_decay * w[i];
                w[i] -= self.lr * grad;
            }
        }
    }
}

/// SGD with classical momentum: `v ← μ·v + g; w ← w − lr·v`.
///
/// Not used by the paper's client loop (plain SGD, §5.1) but provided for
/// the §6 future-work experiments on autonomous hyperparameter tuning.
#[derive(Clone, Debug)]
pub struct MomentumSgd {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient μ.
    pub momentum: f32,
    /// Weight decay.
    pub weight_decay: f32,
    velocity: Vec<Vec<f32>>,
}

impl MomentumSgd {
    /// Creates a momentum optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        MomentumSgd {
            lr,
            momentum,
            weight_decay,
            velocity: Vec::new(),
        }
    }

    /// Applies one update step.
    pub fn step(&mut self, params: &mut [&mut Parameter]) {
        if self.velocity.is_empty() {
            self.velocity = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        assert_eq!(self.velocity.len(), params.len(), "parameter set changed");
        for (p, v) in params.iter_mut().zip(self.velocity.iter_mut()) {
            let w = p.value.as_mut_slice();
            let g = p.grad.as_slice();
            for i in 0..w.len() {
                let grad = g[i] + self.weight_decay * w[i];
                v[i] = self.momentum * v[i] + grad;
                w[i] -= self.lr * v[i];
            }
        }
    }
}

/// Adam ([Kingma & Ba '15]) with bias correction.
#[derive(Clone, Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay β₁.
    pub beta1: f32,
    /// Second-moment decay β₂.
    pub beta2: f32,
    /// Numerical floor ε.
    pub eps: f32,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: u32,
}

impl Adam {
    /// Adam with the standard (β₁, β₂, ε) = (0.9, 0.999, 1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Applies one update step.
    pub fn step(&mut self, params: &mut [&mut Parameter]) {
        if self.m.is_empty() {
            self.m = params.iter().map(|p| vec![0.0; p.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.len()]).collect();
        }
        assert_eq!(self.m.len(), params.len(), "parameter set changed");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params
            .iter_mut()
            .zip(self.m.iter_mut())
            .zip(self.v.iter_mut())
        {
            let w = p.value.as_mut_slice();
            let g = p.grad.as_slice();
            for i in 0..w.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                w[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedca_tensor::Tensor;

    fn param(vals: &[f32], grads: &[f32]) -> Parameter {
        let mut p = Parameter::new("p", Tensor::from_vec([vals.len()], vals.to_vec()));
        p.grad = Tensor::from_vec([grads.len()], grads.to_vec());
        p
    }

    #[test]
    fn vanilla_sgd_step() {
        let mut p = param(&[1.0, 2.0], &[0.5, -0.5]);
        let sgd = Sgd::new(0.1, 0.0);
        sgd.step(&mut [&mut p], None);
        assert_eq!(p.value.as_slice(), &[0.95, 2.05]);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = param(&[1.0], &[0.0]);
        let sgd = Sgd::new(0.1, 0.5);
        sgd.step(&mut [&mut p], None);
        assert!((p.value.as_slice()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn prox_pulls_toward_anchor() {
        let mut p = param(&[2.0], &[0.0]);
        let sgd = Sgd::new(0.1, 0.0).with_prox(1.0);
        // Anchor at 0: gradient = μ(w − a) = 2, so w ← 2 − 0.1·2 = 1.8.
        sgd.step(&mut [&mut p], Some(&[0.0]));
        assert!((p.value.as_slice()[0] - 1.8).abs() < 1e-6);
        // At the anchor the proximal term vanishes.
        let mut q = param(&[3.0], &[0.0]);
        sgd.step(&mut [&mut q], Some(&[3.0]));
        assert!((q.value.as_slice()[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "anchor")]
    fn prox_without_anchor_panics() {
        let mut p = param(&[1.0], &[0.0]);
        Sgd::new(0.1, 0.0).with_prox(0.01).step(&mut [&mut p], None);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        // Constant gradient 1.0, lr 0.1, momentum 0.5:
        // steps: v=1 -> w -= .1 ; v=1.5 -> w -= .15 ; v=1.75 -> w -= .175
        let mut p = param(&[0.0], &[1.0]);
        let mut opt = MomentumSgd::new(0.1, 0.5, 0.0);
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] + 0.1).abs() < 1e-6);
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] + 0.25).abs() < 1e-6);
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] + 0.425).abs() < 1e-6);
    }

    #[test]
    fn momentum_zero_equals_sgd() {
        let mut a = param(&[1.0, -2.0], &[0.3, 0.7]);
        let mut b = param(&[1.0, -2.0], &[0.3, 0.7]);
        MomentumSgd::new(0.1, 0.0, 0.05).step(&mut [&mut a]);
        Sgd::new(0.1, 0.05).step(&mut [&mut b], None);
        assert_eq!(a.value.as_slice(), b.value.as_slice());
    }

    #[test]
    fn adam_first_step_is_lr_signed() {
        // With bias correction, the first Adam step is ≈ lr·sign(g).
        let mut p = param(&[0.0, 0.0], &[5.0, -0.001]);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] + 0.01).abs() < 1e-4);
        assert!((p.value.as_slice()[1] - 0.01).abs() < 1e-4);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(w) = (w-3)^2 by feeding grad = 2(w-3).
        let mut p = param(&[0.0], &[0.0]);
        let mut opt = Adam::new(0.2);
        for _ in 0..200 {
            let w = p.value.as_slice()[0];
            p.grad.as_mut_slice()[0] = 2.0 * (w - 3.0);
            opt.step(&mut [&mut p]);
        }
        let w = p.value.as_slice()[0];
        assert!((w - 3.0).abs() < 0.05, "Adam stalled at {w}");
    }

    #[test]
    fn multi_param_anchor_offsets() {
        let mut a = param(&[1.0, 1.0], &[0.0, 0.0]);
        let mut b = param(&[5.0], &[0.0]);
        let sgd = Sgd::new(1.0, 0.0).with_prox(1.0);
        sgd.step(&mut [&mut a, &mut b], Some(&[0.0, 2.0, 5.0]));
        // a: w - 1.0*(w - anchor): [1-1, 1-(-1)] = [0, 2]; b unchanged.
        assert_eq!(a.value.as_slice(), &[0.0, 2.0]);
        assert_eq!(b.value.as_slice(), &[5.0]);
    }
}
