//! Named trainable parameters.

use fedca_tensor::Tensor;

/// One trainable tensor with its gradient accumulator and fully-qualified
/// name (e.g. `conv3.0.residual.0.weight`).
///
/// Names are assigned at model construction and never change; FedCA keys all
/// per-layer bookkeeping (progress curves, eager-transmission state) on them.
#[derive(Clone, Debug)]
pub struct Parameter {
    name: String,
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Tensor,
}

impl Parameter {
    /// Creates a parameter with a zeroed gradient of matching shape.
    pub fn new(name: impl Into<String>, value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        Parameter {
            name: name.into(),
            value,
            grad,
        }
    }

    /// The fully-qualified parameter name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Prefixes the name with `prefix.` — used by containers when nesting.
    pub fn prepend_name(&mut self, prefix: &str) {
        self.name = format!("{prefix}.{}", self.name);
    }

    /// Number of scalar elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty (never true for real layers).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Zeroes the gradient accumulator in place.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_parameter_has_zero_grad_of_same_shape() {
        let p = Parameter::new("w", Tensor::full([2, 3], 1.5));
        assert_eq!(p.grad.dims(), &[2, 3]);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.name(), "w");
        assert_eq!(p.len(), 6);
    }

    #[test]
    fn prepend_name_builds_dotted_paths() {
        let mut p = Parameter::new("weight", Tensor::zeros([1]));
        p.prepend_name("0");
        p.prepend_name("residual");
        p.prepend_name("conv3.0");
        assert_eq!(p.name(), "conv3.0.residual.0.weight");
    }

    #[test]
    fn zero_grad_clears_accumulation() {
        let mut p = Parameter::new("b", Tensor::zeros([4]));
        p.grad.as_mut_slice()[2] = 3.0;
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }
}
