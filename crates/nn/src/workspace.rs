//! Scratch-tensor arena threaded through `Layer::forward`/`backward`.
//!
//! Every layer activation, gradient, and intermediate buffer in a training
//! iteration is drawn from a [`Workspace`] and returned to it, so a
//! steady-state iteration (after one or two warm-up passes at a fixed batch
//! shape) performs **zero heap allocations** — pinned by the
//! counting-allocator test in `crates/nn/tests/zero_alloc.rs`.
//!
//! The pool recycles whole [`Tensor`]s rather than raw buffers: a tensor's
//! shape is itself heap-backed (`Shape` wraps a `Vec<usize>`), so handing
//! out complete tensors and re-dimensioning them in place via
//! [`Tensor::resize`] reuses both allocations. Selection is best-fit by
//! capacity, which converges to a stable take/give cycle once the pool has
//! seen every shape the model needs.
//!
//! Ownership story: each [`crate::Model`] owns one `Workspace` (so each
//! `ClientArena` in the round executor owns one transitively), keeping
//! scratch memory per-worker with no cross-thread sharing.

use fedca_tensor::Tensor;

/// A pool of recycled tensors.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Tensor>,
    takes: u64,
    misses: u64,
}

impl Workspace {
    /// An empty workspace. Buffers accrete on first use.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Hands out a tensor with the given dimensions and **unspecified
    /// contents** — the caller must fully overwrite it (use
    /// [`Workspace::take_zeroed`] when accumulating). Picks the pooled
    /// tensor with the smallest sufficient capacity; allocates only when
    /// nothing fits.
    pub fn take(&mut self, dims: &[usize]) -> Tensor {
        self.takes += 1;
        let need: usize = dims.iter().product();
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, t) in self.pool.iter().enumerate() {
            let cap = t.capacity();
            if cap >= need && best.is_none_or(|(_, c)| cap < c) {
                best = Some((i, cap));
            }
        }
        let mut t = match best {
            Some((i, _)) => self.pool.swap_remove(i),
            None => {
                self.misses += 1;
                Tensor::zeros([0])
            }
        };
        t.resize(dims);
        t
    }

    /// Hands out a zero-filled tensor with the given dimensions.
    pub fn take_zeroed(&mut self, dims: &[usize]) -> Tensor {
        let mut t = self.take(dims);
        t.fill_zero();
        t
    }

    /// Returns a tensor to the pool for reuse. Capacity-less tensors are
    /// dropped — pooling them would never satisfy a take.
    pub fn give(&mut self, t: Tensor) {
        if t.capacity() > 0 {
            self.pool.push(t);
        }
    }

    /// Number of pooled (idle) tensors.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// `(takes, misses)` counters: a miss is a `take` that had to allocate.
    /// In steady state the miss count stops growing.
    pub fn stats(&self) -> (u64, u64) {
        (self.takes, self.misses)
    }
}

/// Re-dimensions an `Option<Tensor>` cache slot in place, creating the
/// tensor on first use. Returns the (contents-unspecified) cached tensor.
/// This is the layer-local sibling of [`Workspace::take`] for buffers that
/// must *persist across* forward/backward rather than flow between layers.
pub fn cache_resize<'a>(slot: &'a mut Option<Tensor>, dims: &[usize]) -> &'a mut Tensor {
    match slot {
        Some(t) => {
            t.resize(dims);
            t
        }
        None => {
            *slot = Some(Tensor::zeros(dims));
            slot.as_mut().expect("just filled")
        }
    }
}

/// Copies `src` into an `Option<Tensor>` cache slot, reusing its
/// allocations. Replaces the `slot = Some(x.clone())` idiom that allocated
/// every call.
pub fn cache_copy(slot: &mut Option<Tensor>, src: &Tensor) {
    match slot {
        Some(t) => t.copy_from(src),
        None => *slot = Some(src.clone()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_requested_shape() {
        let mut ws = Workspace::new();
        let t = ws.take(&[3, 4]);
        assert_eq!(t.dims(), &[3, 4]);
        assert_eq!(t.len(), 12);
    }

    #[test]
    fn give_then_take_reuses_the_buffer() {
        let mut ws = Workspace::new();
        let t = ws.take(&[8, 8]);
        ws.give(t);
        let (_, misses_before) = ws.stats();
        // Smaller request fits in the recycled capacity: no new allocation.
        let t2 = ws.take(&[4, 4]);
        assert_eq!(t2.dims(), &[4, 4]);
        let (_, misses_after) = ws.stats();
        assert_eq!(misses_before, misses_after, "reuse must not miss");
        assert_eq!(ws.pooled(), 0);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_capacity() {
        let mut ws = Workspace::new();
        let big = ws.take(&[100]);
        let small = ws.take(&[10]);
        ws.give(big);
        ws.give(small);
        let t = ws.take(&[10]);
        assert!(t.capacity() < 100, "picked the big buffer for a small job");
        ws.give(t);
    }

    #[test]
    fn take_zeroed_is_zeroed_even_after_reuse() {
        let mut ws = Workspace::new();
        let mut t = ws.take(&[5]);
        t.as_mut_slice().fill(7.0);
        ws.give(t);
        let z = ws.take_zeroed(&[5]);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn steady_state_stops_missing() {
        let mut ws = Workspace::new();
        for _ in 0..3 {
            let a = ws.take(&[16, 16]);
            let b = ws.take_zeroed(&[4, 64]);
            ws.give(a);
            ws.give(b);
        }
        let (_, misses) = ws.stats();
        for _ in 0..10 {
            let a = ws.take(&[16, 16]);
            let b = ws.take_zeroed(&[4, 64]);
            ws.give(a);
            ws.give(b);
        }
        assert_eq!(ws.stats().1, misses, "warmed-up cycle must not allocate");
    }

    #[test]
    fn cache_helpers_reuse_slots() {
        let mut slot = None;
        cache_resize(&mut slot, &[2, 3]).as_mut_slice().fill(1.0);
        assert_eq!(slot.as_ref().unwrap().dims(), &[2, 3]);
        let src = Tensor::full([2, 2], 5.0);
        cache_copy(&mut slot, &src);
        assert_eq!(slot.as_ref().unwrap(), &src);
    }
}
