//! Finite-difference gradient coverage through the public gradcheck API.
//!
//! The in-module unit tests cover one canonical configuration per layer;
//! these integration tests sweep the shape/hyperparameter axes most likely
//! to hide indexing bugs — strides, padding, channel counts, kernel sizes,
//! stacked LSTM depths — all validated against central differences on a
//! softmax-cross-entropy loss.

use fedca_nn::gradcheck::{check_input_grad, check_param_grads};
use fedca_nn::layers::{BatchNorm2d, Conv2d, Flatten, Linear, Lstm, MaxPool2d, Relu, Sequential};
use fedca_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f32 = 2e-2; // f32 forwards + central differences
const BN_TOL: f32 = 4e-2; // batch statistics amplify rounding noise

/// Conv output spatial size for a square input.
fn conv_out(size: usize, k: usize, stride: usize, padding: usize) -> usize {
    (size + 2 * padding - k) / stride + 1
}

#[test]
fn conv2d_grads_across_strides_paddings_and_channels() {
    // (in_c, out_c, k, stride, padding, input size)
    let configs = [
        (1usize, 2usize, 3usize, 1usize, 0usize, 6usize), // valid conv
        (2, 3, 3, 2, 1, 7),                               // strided, odd input
        (3, 2, 1, 1, 0, 4),                               // 1x1 pointwise
        (2, 2, 5, 2, 2, 8),                               // big kernel, heavy pad
    ];
    for (ci, (in_c, out_c, k, stride, padding, size)) in configs.into_iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(100 + ci as u64);
        let out_hw = conv_out(size, k, stride, padding);
        let mut net = Sequential::new()
            .push(Conv2d::new("c", in_c, out_c, k, stride, padding, &mut rng))
            .push(Flatten::new())
            .push(Linear::new("fc", out_c * out_hw * out_hw, 3, &mut rng));
        let x = Tensor::randn([2, in_c, size, size], 1.0, &mut rng);
        let r = check_param_grads(&mut net, &x, &[0, 2], 1e-3, 40);
        assert!(
            r.max_rel_err < TOL,
            "config {ci} ({in_c}->{out_c}, k{k} s{stride} p{padding}): param rel err {}",
            r.max_rel_err
        );
        let r = check_input_grad(&mut net, &x, &[0, 2], 1e-3, 40);
        assert!(
            r.max_rel_err < TOL,
            "config {ci}: input rel err {}",
            r.max_rel_err
        );
    }
}

#[test]
fn batchnorm_grads_across_channel_counts_and_batch_sizes() {
    for (ci, (channels, batch, size)) in [(1usize, 4usize, 5usize), (3, 2, 4), (4, 3, 3)]
        .into_iter()
        .enumerate()
    {
        let mut rng = StdRng::seed_from_u64(200 + ci as u64);
        let mut net = Sequential::new()
            .push(BatchNorm2d::new("bn", channels))
            .push(Relu::new())
            .push(Flatten::new())
            .push(Linear::new("fc", channels * size * size, 2, &mut rng));
        let x = Tensor::randn([batch, channels, size, size], 1.0, &mut rng);
        let labels: Vec<usize> = (0..batch).map(|i| i % 2).collect();
        let r = check_param_grads(&mut net, &x, &labels, 1e-3, 30);
        assert!(
            r.max_rel_err < BN_TOL,
            "bn config {ci} ({channels}ch, batch {batch}): param rel err {}",
            r.max_rel_err
        );
        let r = check_input_grad(&mut net, &x, &labels, 1e-3, 30);
        assert!(
            r.max_rel_err < BN_TOL,
            "bn config {ci}: input rel err {}",
            r.max_rel_err
        );
    }
}

#[test]
fn lstm_grads_across_depths_and_widths() {
    // (input size, hidden, layers, seq len)
    for (ci, (input, hidden, depth, seq)) in
        [(3usize, 4usize, 1usize, 3usize), (2, 6, 2, 4), (4, 3, 3, 2)]
            .into_iter()
            .enumerate()
    {
        let mut rng = StdRng::seed_from_u64(300 + ci as u64);
        let mut net = Sequential::new()
            .push(Lstm::new("rnn", input, hidden, depth, &mut rng))
            .push(Linear::new("fc", hidden, 3, &mut rng));
        let x = Tensor::randn([2, seq, input], 1.0, &mut rng);
        let r = check_param_grads(&mut net, &x, &[0, 1], 1e-2, 30);
        assert!(
            r.max_rel_err < BN_TOL,
            "lstm config {ci} (in {input}, h {hidden}, depth {depth}): param rel err {}",
            r.max_rel_err
        );
        let r = check_input_grad(&mut net, &x, &[0, 1], 1e-2, 30);
        assert!(
            r.max_rel_err < BN_TOL,
            "lstm config {ci}: input rel err {}",
            r.max_rel_err
        );
    }
}

#[test]
fn conv_pool_bn_stack_grads_end_to_end() {
    // The paper-style CNN block: conv → BN → relu → pool → fc, checked as
    // one stack so cross-layer gradient plumbing is covered too.
    let mut rng = StdRng::seed_from_u64(401);
    let mut net = Sequential::new()
        .push(Conv2d::new("c1", 1, 4, 3, 1, 1, &mut rng))
        .push(BatchNorm2d::new("bn1", 4))
        .push(Relu::new())
        .push(MaxPool2d::new(2))
        .push(Flatten::new())
        .push(Linear::new("fc", 4 * 3 * 3, 4, &mut rng));
    let x = Tensor::randn([3, 1, 6, 6], 1.0, &mut rng);
    let r = check_param_grads(&mut net, &x, &[0, 1, 3], 1e-3, 25);
    assert!(
        r.max_rel_err < BN_TOL,
        "stack param rel err {}",
        r.max_rel_err
    );
    let r = check_input_grad(&mut net, &x, &[0, 1, 3], 1e-3, 25);
    assert!(
        r.max_rel_err < BN_TOL,
        "stack input rel err {}",
        r.max_rel_err
    );
}
