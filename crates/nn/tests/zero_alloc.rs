//! Pins the zero-allocation property of a warmed-up training iteration.
//!
//! A counting global allocator wraps `System`; after a few warm-up
//! iterations populate the workspace pool, the layer caches, and the GEMM
//! pack buffers, one full forward + loss + backward + step must perform
//! ZERO heap allocations for every model family.
//!
//! Everything runs inside ONE `#[test]` — libtest runs tests on parallel
//! threads by default, and a second test's allocations would pollute the
//! global counter mid-measurement.

use fedca_nn::models::{cnn, lstm, wrn, CnnConfig, LstmConfig, WrnConfig};
use fedca_nn::{softmax_cross_entropy_into, Model, Sgd};
use fedca_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn train_iteration(model: &mut Model, x: &Tensor, y: &[usize], grad: &mut Tensor, opt: &Sgd) {
    let logits = model.forward(x);
    let _loss = softmax_cross_entropy_into(&logits, y, grad);
    model.recycle(logits);
    model.zero_grad();
    let gin = model.backward(grad);
    model.recycle(gin);
    model.step(opt, None);
}

fn assert_zero_alloc_steady_state(name: &str, mut model: Model, x: Tensor, y: Vec<usize>) {
    let opt = Sgd::new(0.01, 1e-4);
    let mut grad = Tensor::zeros([0]);
    // Warm up: fills the workspace pool, layer caches, and thread-local
    // GEMM pack buffers.
    for _ in 0..3 {
        train_iteration(&mut model, &x, &y, &mut grad, &opt);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    train_iteration(&mut model, &x, &y, &mut grad, &opt);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "{name}: warmed-up train iteration performed {} heap allocations",
        after - before
    );
}

#[test]
fn warmed_up_training_iteration_allocates_nothing() {
    // Single-threaded GEMM keeps the measurement on this thread only (the
    // latch reads the env var on first use, before any tensor op runs).
    std::env::set_var("FEDCA_THREADS", "1");
    let mut rng = StdRng::seed_from_u64(99);
    let n = 16;

    let cfg = CnnConfig::scaled();
    let x = Tensor::randn(
        [n, cfg.in_channels, cfg.input_hw, cfg.input_hw],
        1.0,
        &mut rng,
    );
    let y: Vec<usize> = (0..n).map(|i| i % cfg.classes).collect();
    assert_zero_alloc_steady_state("cnn", cnn(&cfg, 7), x, y);

    let cfg = LstmConfig::scaled();
    let x = Tensor::randn([n, 12, cfg.input_size], 1.0, &mut rng);
    let y: Vec<usize> = (0..n).map(|i| i % cfg.classes).collect();
    assert_zero_alloc_steady_state("lstm", lstm(&cfg, 7), x, y);

    let cfg = WrnConfig::scaled();
    let x = Tensor::randn(
        [n, cfg.in_channels, cfg.input_hw, cfg.input_hw],
        1.0,
        &mut rng,
    );
    let y: Vec<usize> = (0..n).map(|i| i % cfg.classes).collect();
    assert_zero_alloc_steady_state("wrn", wrn(&cfg, 7), x, y);
}
