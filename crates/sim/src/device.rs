//! Per-client device speed processes.
//!
//! A client's instantaneous speed is `base_speed / slowdown(t)`, where
//! `slowdown(t)` is a piecewise-constant process toggling between fast mode
//! (slowdown 1) and slow mode (slowdown ~ U(1,5)), with mode durations
//! drawn from the paper's Γ(2,40) (fast) and Γ(2,6) (slow) distributions
//! (§5.1). Work is measured in *nominal seconds* — the time the job takes
//! at speed 1.0 — and integrated over the process to get virtual time.

use crate::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rand_distr::{Distribution, Gamma};
use serde::{Deserialize, Serialize};

/// Parameters of the fast/slow toggling process.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DynamicsConfig {
    /// Gamma shape/scale for fast-period durations (paper: Γ(2,40)).
    pub fast_shape: f64,
    /// Scale of the fast-period Gamma.
    pub fast_scale: f64,
    /// Gamma shape/scale for slow-period durations (paper: Γ(2,6)).
    pub slow_shape: f64,
    /// Scale of the slow-period Gamma.
    pub slow_scale: f64,
    /// Slow-mode slowdown ratio sampled from `U(lo, hi)` (paper: U(1,5)).
    pub slowdown_lo: f64,
    /// Upper bound of the slowdown ratio.
    pub slowdown_hi: f64,
}

impl DynamicsConfig {
    /// The paper's §5.1 configuration.
    pub fn paper() -> Self {
        DynamicsConfig {
            fast_shape: 2.0,
            fast_scale: 40.0,
            slow_shape: 2.0,
            slow_scale: 6.0,
            slowdown_lo: 1.0,
            slowdown_hi: 5.0,
        }
    }

    /// A static device (no toggling) — for unit tests and ablations.
    pub fn static_device() -> Self {
        DynamicsConfig {
            fast_shape: 2.0,
            fast_scale: f64::MAX / 4.0,
            slow_shape: 2.0,
            slow_scale: 1.0,
            slowdown_lo: 1.0,
            slowdown_hi: 1.0 + f64::EPSILON,
        }
    }
}

#[derive(Clone, Debug)]
struct Segment {
    /// Segment covers `[start, end)` in virtual seconds.
    end: SimTime,
    /// Instantaneous speed (nominal-work-seconds per virtual second).
    speed: f64,
}

/// Serializable position of a [`DeviceSpeed`] process: the RNG stream
/// state plus every segment generated so far. Restoring it onto a device
/// rebuilt from the same config resumes the identical timeline.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpeedSnapshot {
    /// Raw xoshiro256++ state of the segment-generation stream.
    pub rng: Vec<u64>,
    /// Generated segments as `(end, speed)` pairs, in order.
    pub segments: Vec<(SimTime, f64)>,
    /// Virtual time up to which segments have been generated.
    pub horizon: SimTime,
    /// Whether the next generated segment is a fast period.
    pub next_is_fast: bool,
}

/// A deterministic per-client speed process.
///
/// Segments are generated lazily from the client's own RNG stream, so two
/// runs with the same seed observe the identical timeline no matter how far
/// each round advances the clock.
#[derive(Clone, Debug)]
pub struct DeviceSpeed {
    base: f64,
    dynamics: DynamicsConfig,
    rng: StdRng,
    segments: Vec<Segment>,
    horizon: SimTime,
    next_is_fast: bool,
}

impl DeviceSpeed {
    /// Creates a device with relative `base_speed` (1.0 = nominal hardware)
    /// and the given dynamics, seeded deterministically.
    ///
    /// # Panics
    /// Panics if `base_speed <= 0`.
    pub fn new(base_speed: f64, dynamics: DynamicsConfig, seed: u64) -> Self {
        assert!(base_speed > 0.0, "base speed must be positive");
        DeviceSpeed {
            base: base_speed,
            dynamics,
            rng: StdRng::seed_from_u64(seed),
            segments: Vec::new(),
            horizon: 0.0,
            next_is_fast: true,
        }
    }

    /// Counter-derived constructor: the process's stream is keyed by
    /// `(master_seed, DOMAIN_DEVICE, id)`, so a client's speed timeline is a
    /// pure function of its id — rederivable on demand, in any hydration
    /// order, without a shared RNG to advance.
    pub fn for_client(
        base_speed: f64,
        dynamics: DynamicsConfig,
        master_seed: u64,
        id: u64,
    ) -> Self {
        DeviceSpeed::new(
            base_speed,
            dynamics,
            crate::stream::mix(master_seed, crate::stream::DOMAIN_DEVICE, id),
        )
    }

    /// The device's base speed multiplier.
    pub fn base_speed(&self) -> f64 {
        self.base
    }

    /// Captures the process position for checkpointing. Base speed and
    /// dynamics are excluded: they are config-derived and the restore
    /// target supplies them.
    pub fn snapshot(&self) -> DeviceSpeedSnapshot {
        DeviceSpeedSnapshot {
            rng: self.rng.state().to_vec(),
            segments: self.segments.iter().map(|s| (s.end, s.speed)).collect(),
            horizon: self.horizon,
            next_is_fast: self.next_is_fast,
        }
    }

    /// Restores a position captured by [`DeviceSpeed::snapshot`] onto a
    /// device rebuilt with the same base speed and dynamics.
    ///
    /// # Panics
    /// Panics if the snapshot's RNG state is not 4 words.
    pub fn restore(&mut self, snap: &DeviceSpeedSnapshot) {
        let s: [u64; 4] = snap
            .rng
            .as_slice()
            .try_into()
            .expect("device RNG state must be 4 words");
        self.rng = StdRng::from_state(s);
        self.segments = snap
            .segments
            .iter()
            .map(|&(end, speed)| Segment { end, speed })
            .collect();
        self.horizon = snap.horizon;
        self.next_is_fast = snap.next_is_fast;
    }

    fn extend_to(&mut self, t: SimTime) {
        while self.horizon <= t {
            let (duration, speed) = if self.next_is_fast {
                let gamma = Gamma::new(self.dynamics.fast_shape, self.dynamics.fast_scale)
                    .expect("valid gamma");
                (gamma.sample(&mut self.rng).max(1e-3), self.base)
            } else {
                let gamma = Gamma::new(self.dynamics.slow_shape, self.dynamics.slow_scale)
                    .expect("valid gamma");
                let slowdown = self
                    .rng
                    .gen_range(self.dynamics.slowdown_lo..self.dynamics.slowdown_hi);
                (gamma.sample(&mut self.rng).max(1e-3), self.base / slowdown)
            };
            self.next_is_fast = !self.next_is_fast;
            self.horizon += duration;
            self.segments.push(Segment {
                end: self.horizon,
                speed,
            });
        }
    }

    /// Instantaneous speed at virtual time `t`.
    pub fn speed_at(&mut self, t: SimTime) -> f64 {
        assert!(t >= 0.0, "negative virtual time");
        self.extend_to(t);
        let idx = self.segments.partition_point(|s| s.end <= t);
        self.segments[idx].speed
    }

    /// Executes `work` nominal seconds of compute starting at `start`,
    /// returning the virtual completion time.
    ///
    /// # Panics
    /// Panics if `work < 0` or `start < 0`.
    pub fn execute(&mut self, start: SimTime, work: f64) -> SimTime {
        assert!(work >= 0.0, "negative work");
        assert!(start >= 0.0, "negative start time");
        if work == 0.0 {
            return start;
        }
        let mut t = start;
        let mut remaining = work;
        loop {
            self.extend_to(t);
            let idx = self.segments.partition_point(|s| s.end <= t);
            let seg = self.segments[idx].clone();
            let window = seg.end - t;
            let can_do = window * seg.speed;
            if can_do >= remaining {
                return t + remaining / seg.speed;
            }
            remaining -= can_do;
            t = seg.end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_device_is_linear() {
        let mut d = DeviceSpeed::new(2.0, DynamicsConfig::static_device(), 1);
        // Speed 2: 10 nominal seconds take 5 virtual seconds.
        let end = d.execute(0.0, 10.0);
        assert!((end - 5.0).abs() < 1e-9, "end={end}");
        // Starting later just shifts.
        let end = d.execute(100.0, 4.0);
        assert!((end - 102.0).abs() < 1e-9);
    }

    #[test]
    fn execute_is_monotone_and_additive() {
        let mut d = DeviceSpeed::new(1.0, DynamicsConfig::paper(), 42);
        let t1 = d.execute(0.0, 5.0);
        let t2 = d.execute(t1, 5.0);
        let t_both = d.execute(0.0, 10.0);
        assert!(t1 > 0.0 && t2 > t1);
        assert!(
            (t_both - t2).abs() < 1e-6,
            "split vs whole: {t_both} vs {t2}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = DeviceSpeed::new(1.0, DynamicsConfig::paper(), 7);
        let mut b = DeviceSpeed::new(1.0, DynamicsConfig::paper(), 7);
        for i in 0..20 {
            let t = i as f64 * 13.0;
            assert_eq!(a.execute(t, 3.0), b.execute(t, 3.0));
        }
        let mut c = DeviceSpeed::new(1.0, DynamicsConfig::paper(), 8);
        assert_ne!(a.execute(0.0, 100.0), c.execute(0.0, 100.0));
    }

    #[test]
    fn dynamic_device_is_never_faster_than_base() {
        let mut d = DeviceSpeed::new(3.0, DynamicsConfig::paper(), 5);
        for i in 0..200 {
            let s = d.speed_at(i as f64 * 2.5);
            assert!((3.0 / 5.0 - 1e-9..=3.0 + 1e-12).contains(&s), "speed {s}");
        }
    }

    #[test]
    fn dynamic_device_actually_toggles() {
        let mut d = DeviceSpeed::new(1.0, DynamicsConfig::paper(), 11);
        let speeds: Vec<f64> = (0..400).map(|i| d.speed_at(i as f64)).collect();
        let slow = speeds.iter().filter(|&&s| s < 0.999).count();
        let fast = speeds.iter().filter(|&&s| s >= 0.999).count();
        assert!(slow > 0, "never entered slow mode");
        assert!(fast > 0, "never in fast mode");
    }

    #[test]
    fn for_client_derives_identical_timelines_per_id() {
        let timeline = |id: u64| {
            let mut d = DeviceSpeed::for_client(1.0, DynamicsConfig::paper(), 42, id);
            (0..300)
                .map(|i| d.speed_at(i as f64 * 2.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(timeline(3), timeline(3), "same id, same process");
        assert_ne!(timeline(3), timeline(4), "distinct ids, distinct streams");
    }

    #[test]
    fn zero_work_completes_immediately() {
        let mut d = DeviceSpeed::new(1.0, DynamicsConfig::paper(), 2);
        assert_eq!(d.execute(17.0, 0.0), 17.0);
    }
}
