//! Round-completion arithmetic for partially-synchronous FL.
//!
//! Under the paper's setup the server waits for the earliest
//! `aggregation_fraction` (90%) of the selected clients' uploads and
//! discards the stragglers' updates (§5.1, FedAvg's partial aggregation).

use crate::SimTime;

/// Virtual time at which the round completes: when `ceil(fraction · n)`
/// uploads (at least one) have arrived.
///
/// # Panics
/// Panics if `arrivals` is empty or `fraction` is outside `(0, 1]`.
pub fn round_completion_time(arrivals: &[SimTime], fraction: f64) -> SimTime {
    assert!(!arrivals.is_empty(), "no client arrivals");
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "aggregation fraction must be in (0, 1], got {fraction}"
    );
    let k = ((arrivals.len() as f64 * fraction).ceil() as usize)
        .clamp(1, arrivals.len());
    let mut sorted = arrivals.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN arrival times"));
    let t = sorted[k - 1];
    if t.is_finite() {
        return t;
    }
    // Dropped clients report +inf arrivals; if the cut lands on one, fall
    // back to the last finite arrival (the server cannot wait forever).
    sorted
        .iter()
        .rev()
        .find(|t| t.is_finite())
        .copied()
        .expect("at least one client must finish the round")
}

/// Indices of the clients whose uploads arrive by the completion time (the
/// ones whose updates the server aggregates), preserving input order.
pub fn aggregated_clients(arrivals: &[SimTime], fraction: f64) -> Vec<usize> {
    let deadline = round_completion_time(arrivals, fraction);
    arrivals
        .iter()
        .enumerate()
        .filter(|(_, &t)| t <= deadline)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sync_waits_for_slowest() {
        assert_eq!(round_completion_time(&[3.0, 1.0, 7.0], 1.0), 7.0);
    }

    #[test]
    fn ninety_percent_drops_the_straggler() {
        let arrivals: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        // ceil(10*0.9)=9 -> completes at t=9, dropping the t=10 straggler.
        assert_eq!(round_completion_time(&arrivals, 0.9), 9.0);
        let agg = aggregated_clients(&arrivals, 0.9);
        assert_eq!(agg.len(), 9);
        assert!(!agg.contains(&9));
    }

    #[test]
    fn fraction_rounds_up() {
        // 4 clients at 50% -> ceil(2) = 2 uploads.
        assert_eq!(round_completion_time(&[4.0, 1.0, 2.0, 3.0], 0.5), 2.0);
    }

    #[test]
    fn tiny_fraction_still_waits_for_one() {
        assert_eq!(round_completion_time(&[5.0, 2.0], 0.01), 2.0);
    }

    #[test]
    fn ties_include_all_tied_clients() {
        let arrivals = [1.0, 1.0, 1.0, 9.0];
        let agg = aggregated_clients(&arrivals, 0.5);
        assert_eq!(agg, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_zero_fraction() {
        let _ = round_completion_time(&[1.0], 0.0);
    }
}
