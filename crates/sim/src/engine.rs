//! Round-completion arithmetic for partially-synchronous FL.
//!
//! Under the paper's setup the server waits for the earliest
//! `aggregation_fraction` (90%) of the selected clients' uploads and
//! discards the stragglers' updates (§5.1, FedAvg's partial aggregation).

use crate::SimTime;

/// Virtual time at which the round completes: when `ceil(fraction · n)`
/// uploads (at least one) have arrived.
///
/// # Panics
/// Panics if `arrivals` is empty or `fraction` is outside `(0, 1]`.
pub fn round_completion_time(arrivals: &[SimTime], fraction: f64) -> SimTime {
    assert!(!arrivals.is_empty(), "no client arrivals");
    assert!(
        fraction > 0.0 && fraction <= 1.0,
        "aggregation fraction must be in (0, 1], got {fraction}"
    );
    let k = ((arrivals.len() as f64 * fraction).ceil() as usize).clamp(1, arrivals.len());
    let mut sorted = arrivals.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN arrival times"));
    let t = sorted[k - 1];
    if t.is_finite() {
        return t;
    }
    // Dropped clients report +inf arrivals; if the cut lands on one, fall
    // back to the last finite arrival (the server cannot wait forever).
    sorted
        .iter()
        .rev()
        .find(|t| t.is_finite())
        .copied()
        .expect("at least one client must finish the round")
}

/// Indices of the clients whose uploads arrive by the completion time (the
/// ones whose updates the server aggregates), preserving input order.
pub fn aggregated_clients(arrivals: &[SimTime], fraction: f64) -> Vec<usize> {
    let deadline = round_completion_time(arrivals, fraction);
    arrivals
        .iter()
        .enumerate()
        .filter(|(_, &t)| t <= deadline)
        .map(|(i, _)| i)
        .collect()
}

/// Incremental form of [`round_completion_time`]: arrivals are observed one
/// at a time (in whatever order client uploads complete) and the completion
/// cut can be read at any point.
///
/// Maintains the arrivals in sorted order, so the cut is the same value the
/// batch helper computes over the full slice — streaming ingestion order
/// never changes the result.
#[derive(Clone, Debug)]
pub struct ArrivalCut {
    fraction: f64,
    sorted: Vec<SimTime>,
}

impl ArrivalCut {
    /// Creates an empty cut tracker.
    ///
    /// # Panics
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn new(fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "aggregation fraction must be in (0, 1], got {fraction}"
        );
        ArrivalCut {
            fraction,
            sorted: Vec::new(),
        }
    }

    /// Like [`ArrivalCut::new`], with room for `n` arrivals reserved up
    /// front so [`observe`](ArrivalCut::observe) never reallocates when the
    /// arrival count is known (the server's ingest hot path).
    ///
    /// # Panics
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn with_capacity(fraction: f64, n: usize) -> Self {
        let mut cut = Self::new(fraction);
        cut.sorted.reserve(n);
        cut
    }

    /// Records one upload arrival (`+inf` for clients that dropped out).
    ///
    /// # Panics
    /// Panics on NaN arrival times.
    pub fn observe(&mut self, arrival: SimTime) {
        assert!(!arrival.is_nan(), "NaN arrival time");
        let pos = self.sorted.partition_point(|&t| {
            t.partial_cmp(&arrival).expect("non-NaN") == std::cmp::Ordering::Less
        });
        self.sorted.insert(pos, arrival);
    }

    /// Arrivals observed so far.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether no arrivals have been observed.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Arrivals that actually happened (finite times) — dropped, crashed,
    /// and failed clients report `+inf` and are excluded.
    pub fn finite_count(&self) -> usize {
        // `sorted` is ascending, so finite arrivals form a prefix.
        self.sorted.partition_point(|t| t.is_finite())
    }

    /// The completion time over the arrivals observed so far — identical to
    /// [`round_completion_time`] on the same multiset of arrivals.
    ///
    /// # Panics
    /// Panics if no arrival has been observed, or every arrival is `+inf`.
    pub fn completion_time(&self) -> SimTime {
        assert!(!self.sorted.is_empty(), "no client arrivals");
        let k = ((self.sorted.len() as f64 * self.fraction).ceil() as usize)
            .clamp(1, self.sorted.len());
        let t = self.sorted[k - 1];
        if t.is_finite() {
            return t;
        }
        self.sorted
            .iter()
            .rev()
            .find(|t| t.is_finite())
            .copied()
            .expect("at least one client must finish the round")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_sync_waits_for_slowest() {
        assert_eq!(round_completion_time(&[3.0, 1.0, 7.0], 1.0), 7.0);
    }

    #[test]
    fn ninety_percent_drops_the_straggler() {
        let arrivals: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        // ceil(10*0.9)=9 -> completes at t=9, dropping the t=10 straggler.
        assert_eq!(round_completion_time(&arrivals, 0.9), 9.0);
        let agg = aggregated_clients(&arrivals, 0.9);
        assert_eq!(agg.len(), 9);
        assert!(!agg.contains(&9));
    }

    #[test]
    fn fraction_rounds_up() {
        // 4 clients at 50% -> ceil(2) = 2 uploads.
        assert_eq!(round_completion_time(&[4.0, 1.0, 2.0, 3.0], 0.5), 2.0);
    }

    #[test]
    fn tiny_fraction_still_waits_for_one() {
        assert_eq!(round_completion_time(&[5.0, 2.0], 0.01), 2.0);
    }

    #[test]
    fn ties_include_all_tied_clients() {
        let arrivals = [1.0, 1.0, 1.0, 9.0];
        let agg = aggregated_clients(&arrivals, 0.5);
        assert_eq!(agg, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_zero_fraction() {
        let _ = round_completion_time(&[1.0], 0.0);
    }

    #[test]
    fn arrival_cut_matches_batch_helper_in_any_order() {
        let arrivals = [4.0, 1.0, f64::INFINITY, 2.0, 3.0, 2.0];
        for fraction in [0.3, 0.5, 0.9, 1.0] {
            // Ingest in several different orders; all must agree with the
            // batch computation over the full slice.
            for rotation in 0..arrivals.len() {
                let mut cut = ArrivalCut::new(fraction);
                for i in 0..arrivals.len() {
                    cut.observe(arrivals[(i + rotation) % arrivals.len()]);
                }
                assert_eq!(cut.len(), arrivals.len());
                assert_eq!(
                    cut.completion_time(),
                    round_completion_time(&arrivals, fraction),
                    "fraction {fraction}, rotation {rotation}"
                );
            }
        }
    }

    #[test]
    fn finite_count_excludes_lost_arrivals() {
        let mut cut = ArrivalCut::new(0.9);
        assert_eq!(cut.finite_count(), 0);
        cut.observe(f64::INFINITY);
        cut.observe(2.0);
        cut.observe(f64::INFINITY);
        cut.observe(1.0);
        assert_eq!(cut.len(), 4);
        assert_eq!(cut.finite_count(), 2);
    }

    #[test]
    fn arrival_cut_is_readable_after_every_observation() {
        let mut cut = ArrivalCut::new(0.9);
        assert!(cut.is_empty());
        let mut seen = Vec::new();
        for t in [5.0, 1.0, 3.0, f64::INFINITY] {
            cut.observe(t);
            seen.push(t);
            assert_eq!(cut.completion_time(), round_completion_time(&seen, 0.9));
        }
    }
}
