//! Deterministic fault injection for the virtual testbed.
//!
//! FedCA's value proposition is tolerating unreliable clients — dropouts,
//! stragglers, deadline misses (§5 of the paper) — yet a simulator only
//! earns the right to claim that if faults themselves are first-class,
//! seeded, and reproducible. This module defines a [`FaultPlan`]: a pure
//! function from `(round, client)` to the faults that client suffers that
//! round, derived from a dedicated fault seed so the *same* training
//! trajectory can be replayed under the *same* adversarial schedule.
//!
//! Fault classes (all independent per `(round, client)` draw):
//!
//! * **crash** — the client process dies at a specific local iteration; its
//!   upload never arrives (like availability churn, but attributed as a
//!   crash rather than a graceful departure);
//! * **worker panic** — the client code `panic!`s at a specific iteration,
//!   exercising the executor's `catch_unwind` / failure-reporting path and
//!   destroying the client's in-memory state;
//! * **result loss** — the round completes but the upload message is lost;
//! * **result delay** — the upload arrives late by a bounded amount;
//! * **bandwidth degradation** — the client's links run at a fraction of
//!   nominal bandwidth for the round;
//! * **deadline slip** — the client *believes* it has more time than the
//!   server granted (a stale/garbled deadline offload), so it risks missing
//!   the aggregation cut.
//!
//! Nothing here depends on wall-clock, thread scheduling, or draw *order*
//! across clients: every `(round, client)` pair seeds its own RNG, so a
//! plan queried from any number of worker threads yields identical faults.

use crate::stream::{mix, DOMAIN_TRANSPORT};
use crate::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-fault-class probabilities and intensities. All probabilities are
/// per `(round, selected client)`; `FaultConfig::none()` (the `Default`)
/// injects nothing and is behaviourally invisible.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the fault stream, independent of the experiment seed so the
    /// same training run can be replayed under different fault schedules.
    #[serde(default)]
    pub seed: u64,
    /// Probability the client crashes at a uniformly-drawn local iteration.
    #[serde(default)]
    pub crash_prob: f64,
    /// Probability the client code panics (worker-side `panic!`) at a
    /// uniformly-drawn local iteration.
    #[serde(default)]
    pub panic_prob: f64,
    /// Probability the final upload message is lost entirely.
    #[serde(default)]
    pub result_loss_prob: f64,
    /// Probability the final upload is delayed.
    #[serde(default)]
    pub result_delay_prob: f64,
    /// Maximum delay (virtual seconds) added to a delayed upload.
    #[serde(default)]
    pub result_delay_max: SimTime,
    /// Probability the client's links are degraded this round.
    #[serde(default)]
    pub bandwidth_degrade_prob: f64,
    /// Lowest bandwidth fraction a degraded link can run at, in `(0, 1]`;
    /// the factor is drawn uniformly from `[floor, 1)`. A missing/zero
    /// value is normalized to 1.0 (no degradation depth) when degradation
    /// is disabled, and rejected by validation otherwise.
    #[serde(default)]
    pub bandwidth_floor: f64,
    /// Probability the client operates under a slipped (stale) deadline.
    #[serde(default)]
    pub deadline_slip_prob: f64,
    /// Maximum extra time (virtual seconds) a slipped client believes it
    /// has beyond the server's true deadline.
    #[serde(default)]
    pub deadline_slip_max: SimTime,
    /// Probability the client's final update is corrupted in flight
    /// (NaN-poisoned payload): the upload arrives on time but the server's
    /// non-finite guard must reject it instead of aggregating it.
    #[serde(default)]
    pub corrupt_update_prob: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

impl FaultConfig {
    /// The inert configuration: no fault is ever injected.
    pub fn none() -> Self {
        FaultConfig {
            seed: 0,
            crash_prob: 0.0,
            panic_prob: 0.0,
            result_loss_prob: 0.0,
            result_delay_prob: 0.0,
            result_delay_max: 0.0,
            bandwidth_degrade_prob: 0.0,
            bandwidth_floor: 1.0,
            deadline_slip_prob: 0.0,
            deadline_slip_max: 0.0,
            corrupt_update_prob: 0.0,
        }
    }

    /// A moderate everything-on mix for chaos sweeps: every fault class has
    /// nonzero probability, scaled so most rounds still aggregate someone.
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            seed,
            crash_prob: 0.15,
            panic_prob: 0.10,
            result_loss_prob: 0.10,
            result_delay_prob: 0.25,
            result_delay_max: 5.0,
            bandwidth_degrade_prob: 0.30,
            bandwidth_floor: 0.2,
            deadline_slip_prob: 0.20,
            deadline_slip_max: 10.0,
            // Kept off in the chaos mix: the PR 2/3 golden-trace fixtures
            // pin chaos() schedules, and corruption has its own sweeps.
            corrupt_update_prob: 0.0,
        }
    }

    /// Whether this configuration can ever inject a fault.
    pub fn is_inert(&self) -> bool {
        self.crash_prob == 0.0
            && self.panic_prob == 0.0
            && self.result_loss_prob == 0.0
            && self.result_delay_prob == 0.0
            && self.bandwidth_degrade_prob == 0.0
            && self.deadline_slip_prob == 0.0
            && self.corrupt_update_prob == 0.0
    }

    fn validate(&self) {
        for (name, p) in [
            ("crash_prob", self.crash_prob),
            ("panic_prob", self.panic_prob),
            ("result_loss_prob", self.result_loss_prob),
            ("result_delay_prob", self.result_delay_prob),
            ("bandwidth_degrade_prob", self.bandwidth_degrade_prob),
            ("deadline_slip_prob", self.deadline_slip_prob),
            ("corrupt_update_prob", self.corrupt_update_prob),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be in [0, 1], got {p}"
            );
        }
        // A floor of 0.0 only matters when degradation can actually fire;
        // serde's missing-field default is 0.0, which plan construction
        // normalizes to 1.0 for degrade-free configs.
        if self.bandwidth_degrade_prob > 0.0 {
            assert!(
                self.bandwidth_floor > 0.0 && self.bandwidth_floor <= 1.0,
                "bandwidth_floor must be in (0, 1], got {}",
                self.bandwidth_floor
            );
        }
        assert!(self.result_delay_max >= 0.0, "negative result_delay_max");
        assert!(self.deadline_slip_max >= 0.0, "negative deadline_slip_max");
    }
}

/// The faults one client suffers in one round. `ClientFaults::none()` (the
/// `Default`) is the happy path and must be behaviourally invisible.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClientFaults {
    /// Crash (state survives, upload never arrives) at this local iteration.
    pub crash_at_iter: Option<usize>,
    /// `panic!` (state destroyed on the worker) at this local iteration.
    pub panic_at_iter: Option<usize>,
    /// Extra virtual seconds added to the final upload's arrival.
    pub result_delay: SimTime,
    /// The final upload message is lost (arrival at `+inf`).
    pub lose_result: bool,
    /// Link bandwidth multiplier for the round (1.0 = nominal).
    pub bandwidth_factor: f64,
    /// Extra time the client *believes* it has beyond the true deadline.
    pub deadline_slip: SimTime,
    /// The final update payload is NaN-poisoned in flight; the server's
    /// non-finite guard must reject it.
    #[serde(default)]
    pub corrupt_update: bool,
}

impl Default for ClientFaults {
    fn default() -> Self {
        ClientFaults::none()
    }
}

impl ClientFaults {
    /// The fault-free assignment.
    pub fn none() -> Self {
        ClientFaults {
            crash_at_iter: None,
            panic_at_iter: None,
            result_delay: 0.0,
            lose_result: false,
            bandwidth_factor: 1.0,
            deadline_slip: 0.0,
            corrupt_update: false,
        }
    }

    /// Whether this assignment injects nothing.
    pub fn is_none(&self) -> bool {
        *self == ClientFaults::none()
    }

    /// Names of the armed fault classes, in a fixed canonical order (the
    /// declaration order above). Empty for the fault-free assignment; used
    /// by the trace layer to journal what a round armed before it runs.
    pub fn active_kinds(&self) -> Vec<String> {
        let mut kinds = Vec::new();
        if self.crash_at_iter.is_some() {
            kinds.push("crash".to_string());
        }
        if self.panic_at_iter.is_some() {
            kinds.push("panic".to_string());
        }
        if self.result_delay > 0.0 {
            kinds.push("result_delay".to_string());
        }
        if self.lose_result {
            kinds.push("result_loss".to_string());
        }
        if self.bandwidth_factor < 1.0 {
            kinds.push("bandwidth_degrade".to_string());
        }
        if self.deadline_slip > 0.0 {
            kinds.push("deadline_slip".to_string());
        }
        if self.corrupt_update {
            kinds.push("corrupt_update".to_string());
        }
        kinds
    }
}

/// A seeded, deterministic fault schedule: a pure function from
/// `(round, client)` to [`ClientFaults`].
///
/// Each pair seeds its own RNG, so draws are independent of query order and
/// of which thread asks — the property that makes chaos runs reproducible
/// across worker counts.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Builds a plan, validating the configuration.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]`, the bandwidth floor is
    /// outside `(0, 1]`, or an intensity is negative.
    pub fn new(mut cfg: FaultConfig) -> Self {
        cfg.validate();
        if cfg.bandwidth_degrade_prob == 0.0 && cfg.bandwidth_floor == 0.0 {
            // Serde's missing-field default; degradation never fires, so the
            // floor is only cosmetic — normalize it to the healthy value.
            cfg.bandwidth_floor = 1.0;
        }
        FaultPlan { cfg }
    }

    /// The configuration this plan draws from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether this plan can ever inject a fault.
    pub fn is_inert(&self) -> bool {
        self.cfg.is_inert()
    }

    /// The faults `client` suffers in `round`, given its planned local
    /// iteration count. Deterministic in `(seed, round, client)`.
    pub fn draw(&self, round: usize, client: usize, planned_iters: usize) -> ClientFaults {
        if self.cfg.is_inert() {
            return ClientFaults::none();
        }
        let mut rng = StdRng::seed_from_u64(mix(self.cfg.seed, round as u64, client as u64));
        let k = planned_iters.max(1);
        // Every branch consumes the same number of draws, so toggling one
        // fault class's probability never reshuffles the others.
        let crash_roll = rng.gen_range(0.0..1.0);
        let crash_iter = rng.gen_range(1..=k);
        let panic_roll = rng.gen_range(0.0..1.0);
        let panic_iter = rng.gen_range(1..=k);
        let loss_roll = rng.gen_range(0.0..1.0);
        let delay_roll = rng.gen_range(0.0..1.0);
        let delay = rng.gen_range(0.0..1.0) * self.cfg.result_delay_max;
        let degrade_roll = rng.gen_range(0.0..1.0);
        let factor =
            self.cfg.bandwidth_floor + rng.gen_range(0.0..1.0) * (1.0 - self.cfg.bandwidth_floor);
        let slip_roll = rng.gen_range(0.0..1.0);
        let slip = rng.gen_range(0.0..1.0) * self.cfg.deadline_slip_max;
        // Appended last: adding this class must not reshuffle the draws of
        // the classes above (golden chaos schedules are seed-pinned).
        let corrupt_roll = rng.gen_range(0.0..1.0);
        ClientFaults {
            crash_at_iter: (crash_roll < self.cfg.crash_prob).then_some(crash_iter),
            panic_at_iter: (panic_roll < self.cfg.panic_prob).then_some(panic_iter),
            result_delay: if delay_roll < self.cfg.result_delay_prob {
                delay
            } else {
                0.0
            },
            lose_result: loss_roll < self.cfg.result_loss_prob,
            bandwidth_factor: if degrade_roll < self.cfg.bandwidth_degrade_prob {
                factor
            } else {
                1.0
            },
            deadline_slip: if slip_roll < self.cfg.deadline_slip_prob {
                slip
            } else {
                0.0
            },
            corrupt_update: corrupt_roll < self.cfg.corrupt_update_prob,
        }
    }
}

// ---------------------------------------------------------------------------
// Transport faults: deterministic byte-level frame mischief for the shard
// transport. Where `FaultPlan` attacks *clients* per `(round, client)`, a
// `TransportFaultPlan` attacks *frames* per `(round, shard, direction, seq)`:
// drop, duplicate, reorder, delay, or bit-corrupt an individual wire
// transmission. `seq` is the physical transmission counter, so a retried
// frame gets a fresh draw — under any probability below 1.0, resend
// eventually pushes every message through, which is what makes the
// supervision layer's bit-identity invariant testable.
// ---------------------------------------------------------------------------

/// Which way a frame is travelling, as a fault-draw coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Coordinator → shard child (Init, RoundStart, acks, pings…).
    ToShard = 0,
    /// Shard child → coordinator (Hello, Done, acks, pongs…).
    FromShard = 1,
}

/// Per-frame fault probabilities and intensities. All probabilities are per
/// physical transmission; `TransportFaultConfig::none()` (the `Default`)
/// injects nothing and is behaviourally invisible.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TransportFaultConfig {
    /// Seed of the transport fault stream, independent of the experiment
    /// seed (and domain-separated even when numerically equal to it).
    #[serde(default)]
    pub seed: u64,
    /// Probability a transmitted frame is silently discarded.
    #[serde(default)]
    pub drop_prob: f64,
    /// Probability a transmitted frame is delivered twice.
    #[serde(default)]
    pub duplicate_prob: f64,
    /// Probability a transmitted frame is held back and delivered after the
    /// next transmission (a one-slot reorder).
    #[serde(default)]
    pub reorder_prob: f64,
    /// Probability a transmitted frame is delayed.
    #[serde(default)]
    pub delay_prob: f64,
    /// Maximum delay (host milliseconds) added to a delayed frame.
    #[serde(default)]
    pub delay_max_ms: f64,
    /// Probability one byte of the frame is XOR-corrupted in flight. The
    /// shim confines the flip to checksummed bytes (seq, crc, body), so
    /// corruption always surfaces as a typed checksum mismatch.
    #[serde(default)]
    pub corrupt_prob: f64,
}

impl Default for TransportFaultConfig {
    fn default() -> Self {
        TransportFaultConfig::none()
    }
}

impl TransportFaultConfig {
    /// The inert configuration: no frame is ever touched.
    pub fn none() -> Self {
        TransportFaultConfig {
            seed: 0,
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            delay_prob: 0.0,
            delay_max_ms: 0.0,
            corrupt_prob: 0.0,
        }
    }

    /// A moderate everything-on mix for transport chaos sweeps: every fault
    /// class has nonzero probability, scaled so retry budgets are rarely
    /// exhausted and rounds still complete briskly.
    pub fn chaos(seed: u64) -> Self {
        TransportFaultConfig {
            seed,
            drop_prob: 0.15,
            duplicate_prob: 0.10,
            reorder_prob: 0.10,
            delay_prob: 0.15,
            delay_max_ms: 20.0,
            corrupt_prob: 0.10,
        }
    }

    /// Whether this configuration can ever touch a frame.
    pub fn is_inert(&self) -> bool {
        self.drop_prob == 0.0
            && self.duplicate_prob == 0.0
            && self.reorder_prob == 0.0
            && self.delay_prob == 0.0
            && self.corrupt_prob == 0.0
    }

    fn validate(&self) {
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("duplicate_prob", self.duplicate_prob),
            ("reorder_prob", self.reorder_prob),
            ("delay_prob", self.delay_prob),
            ("corrupt_prob", self.corrupt_prob),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} must be in [0, 1], got {p}"
            );
        }
        assert!(self.delay_max_ms >= 0.0, "negative delay_max_ms");
    }
}

/// The faults one physical frame transmission suffers.
#[derive(Clone, Debug, PartialEq)]
pub struct FrameFaults {
    /// The frame is silently discarded.
    pub drop: bool,
    /// The frame is delivered twice.
    pub duplicate: bool,
    /// The frame is held back one transmission slot.
    pub reorder: bool,
    /// Extra host milliseconds before the frame is written (0 = on time).
    pub delay_ms: f64,
    /// XOR one byte: `(position seed, non-zero mask)`. The shim maps the
    /// position seed onto the frame's checksummed byte range.
    pub corrupt: Option<(u64, u8)>,
}

impl FrameFaults {
    /// The fault-free assignment.
    pub fn none() -> Self {
        FrameFaults {
            drop: false,
            duplicate: false,
            reorder: false,
            delay_ms: 0.0,
            corrupt: None,
        }
    }

    /// Whether this assignment injects nothing.
    pub fn is_none(&self) -> bool {
        *self == FrameFaults::none()
    }
}

impl Default for FrameFaults {
    fn default() -> Self {
        FrameFaults::none()
    }
}

/// A seeded, deterministic transport fault schedule: a pure function from
/// `(round, shard, direction, seq)` to [`FrameFaults`].
///
/// Each coordinate tuple seeds its own RNG, so draws are independent of
/// query order and topology — the same discipline as [`FaultPlan`], extended
/// by two coordinates for the transport's geometry.
#[derive(Clone, Debug)]
pub struct TransportFaultPlan {
    cfg: TransportFaultConfig,
}

impl TransportFaultPlan {
    /// Builds a plan, validating the configuration.
    ///
    /// # Panics
    /// Panics if any probability is outside `[0, 1]` or the delay bound is
    /// negative.
    pub fn new(cfg: TransportFaultConfig) -> Self {
        cfg.validate();
        TransportFaultPlan { cfg }
    }

    /// The configuration this plan draws from.
    pub fn config(&self) -> &TransportFaultConfig {
        &self.cfg
    }

    /// Whether this plan can ever touch a frame.
    pub fn is_inert(&self) -> bool {
        self.cfg.is_inert()
    }

    /// The faults the `seq`-th physical transmission on `(round, shard,
    /// direction)` suffers. Deterministic in the full coordinate tuple.
    pub fn draw(&self, round: usize, shard: usize, direction: Direction, seq: u64) -> FrameFaults {
        if self.cfg.is_inert() {
            return FrameFaults::none();
        }
        let key = mix(
            mix(self.cfg.seed ^ DOMAIN_TRANSPORT, round as u64, shard as u64),
            direction as u64,
            seq,
        );
        let mut rng = StdRng::seed_from_u64(key);
        // Every branch consumes the same number of draws, so toggling one
        // fault class's probability never reshuffles the others; new classes
        // must be appended last.
        let drop_roll = rng.gen_range(0.0..1.0);
        let dup_roll = rng.gen_range(0.0..1.0);
        let reorder_roll = rng.gen_range(0.0..1.0);
        let delay_roll = rng.gen_range(0.0..1.0);
        let delay = rng.gen_range(0.0..1.0) * self.cfg.delay_max_ms;
        let corrupt_roll = rng.gen_range(0.0..1.0);
        let corrupt_pos = rng.gen::<u64>();
        let corrupt_mask = rng.gen_range(1..=255u8);
        FrameFaults {
            drop: drop_roll < self.cfg.drop_prob,
            duplicate: dup_roll < self.cfg.duplicate_prob,
            reorder: reorder_roll < self.cfg.reorder_prob,
            delay_ms: if delay_roll < self.cfg.delay_prob {
                delay
            } else {
                0.0
            },
            corrupt: (corrupt_roll < self.cfg.corrupt_prob).then_some((corrupt_pos, corrupt_mask)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_kinds_names_exactly_the_armed_classes() {
        assert!(ClientFaults::none().active_kinds().is_empty());
        let mut f = ClientFaults::none();
        f.crash_at_iter = Some(3);
        f.deadline_slip = 2.0;
        assert_eq!(f.active_kinds(), vec!["crash", "deadline_slip"]);
        let plan = FaultPlan::new(FaultConfig {
            seed: 3,
            result_loss_prob: 1.0,
            bandwidth_degrade_prob: 1.0,
            bandwidth_floor: 0.5,
            ..FaultConfig::none()
        });
        assert_eq!(
            plan.draw(0, 0, 5).active_kinds(),
            vec!["result_loss", "bandwidth_degrade"]
        );
    }

    #[test]
    fn inert_plan_draws_nothing() {
        let plan = FaultPlan::new(FaultConfig::none());
        assert!(plan.is_inert());
        for round in 0..20 {
            for client in 0..20 {
                assert!(plan.draw(round, client, 10).is_none());
            }
        }
    }

    #[test]
    fn zero_probability_draws_nothing_even_with_a_seed() {
        // A seeded plan whose probabilities are all zero must be
        // byte-identical to the inert plan's output.
        let plan = FaultPlan::new(FaultConfig {
            seed: 0xDEAD_BEEF,
            ..FaultConfig::none()
        });
        for round in 0..10 {
            for client in 0..10 {
                assert_eq!(plan.draw(round, client, 8), ClientFaults::none());
            }
        }
    }

    #[test]
    fn draws_are_deterministic_and_query_order_free() {
        let plan = FaultPlan::new(FaultConfig::chaos(7));
        let a: Vec<_> = (0..50).map(|c| plan.draw(3, c, 12)).collect();
        let b: Vec<_> = (0..50).rev().map(|c| plan.draw(3, c, 12)).collect();
        for (c, fa) in a.iter().enumerate() {
            assert_eq!(*fa, b[49 - c], "client {c} diverged across query order");
            assert_eq!(*fa, plan.draw(3, c, 12), "client {c} not deterministic");
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::new(FaultConfig::chaos(1));
        let b = FaultPlan::new(FaultConfig::chaos(2));
        let differs = (0..200).any(|c| a.draw(0, c, 10) != b.draw(0, c, 10));
        assert!(differs, "fault schedules must depend on the seed");
    }

    #[test]
    fn certain_faults_always_fire_within_bounds() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 3,
            crash_prob: 1.0,
            panic_prob: 1.0,
            result_loss_prob: 1.0,
            result_delay_prob: 1.0,
            result_delay_max: 2.0,
            bandwidth_degrade_prob: 1.0,
            bandwidth_floor: 0.25,
            deadline_slip_prob: 1.0,
            deadline_slip_max: 4.0,
            corrupt_update_prob: 1.0,
        });
        for client in 0..100 {
            let f = plan.draw(1, client, 6);
            let crash = f.crash_at_iter.expect("crash must fire");
            let panic = f.panic_at_iter.expect("panic must fire");
            assert!((1..=6).contains(&crash));
            assert!((1..=6).contains(&panic));
            assert!(f.lose_result);
            assert!((0.0..=2.0).contains(&f.result_delay));
            assert!((0.25..=1.0).contains(&f.bandwidth_factor));
            assert!((0.0..=4.0).contains(&f.deadline_slip));
            assert!(f.corrupt_update);
        }
    }

    #[test]
    fn fault_frequencies_track_probabilities() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 11,
            crash_prob: 0.3,
            ..FaultConfig::none()
        });
        let n = 2000;
        let crashes = (0..n)
            .filter(|&c| plan.draw(0, c, 10).crash_at_iter.is_some())
            .count();
        let rate = crashes as f64 / n as f64;
        assert!(
            (0.25..0.35).contains(&rate),
            "crash rate {rate} far from 0.3"
        );
    }

    #[test]
    fn planned_iters_zero_is_clamped() {
        let plan = FaultPlan::new(FaultConfig {
            seed: 5,
            crash_prob: 1.0,
            ..FaultConfig::none()
        });
        assert_eq!(plan.draw(0, 0, 0).crash_at_iter, Some(1));
    }

    #[test]
    #[should_panic(expected = "crash_prob")]
    fn rejects_out_of_range_probability() {
        let _ = FaultPlan::new(FaultConfig {
            crash_prob: 1.5,
            ..FaultConfig::none()
        });
    }

    #[test]
    fn config_serializes_round_trip() {
        let cfg = FaultConfig::chaos(9);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: FaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn inert_transport_plan_draws_nothing() {
        let plan = TransportFaultPlan::new(TransportFaultConfig::none());
        assert!(plan.is_inert());
        for round in 0..5 {
            for shard in 0..4 {
                for seq in 0..50 {
                    assert!(plan.draw(round, shard, Direction::ToShard, seq).is_none());
                    assert!(plan.draw(round, shard, Direction::FromShard, seq).is_none());
                }
            }
        }
    }

    #[test]
    fn zero_probability_transport_draws_nothing_even_with_a_seed() {
        let plan = TransportFaultPlan::new(TransportFaultConfig {
            seed: 0xDEAD_BEEF,
            ..TransportFaultConfig::none()
        });
        for seq in 0..50 {
            assert_eq!(
                plan.draw(2, 1, Direction::FromShard, seq),
                FrameFaults::none()
            );
        }
    }

    #[test]
    fn transport_draws_are_deterministic_and_query_order_free() {
        let plan = TransportFaultPlan::new(TransportFaultConfig::chaos(7));
        let a: Vec<_> = (0..100)
            .map(|s| plan.draw(3, 1, Direction::ToShard, s))
            .collect();
        let b: Vec<_> = (0..100)
            .rev()
            .map(|s| plan.draw(3, 1, Direction::ToShard, s))
            .collect();
        for (s, fa) in a.iter().enumerate() {
            assert_eq!(*fa, b[99 - s], "seq {s} diverged across query order");
            assert_eq!(
                *fa,
                plan.draw(3, 1, Direction::ToShard, s as u64),
                "seq {s} not deterministic"
            );
        }
    }

    #[test]
    fn transport_coordinates_are_all_separated() {
        // Same seq must draw independently across rounds, shards, and
        // directions — a topology change must not replay another
        // coordinate's schedule.
        let plan = TransportFaultPlan::new(TransportFaultConfig::chaos(13));
        let base: Vec<_> = (0..200)
            .map(|s| plan.draw(1, 1, Direction::ToShard, s))
            .collect();
        let other_round: Vec<_> = (0..200)
            .map(|s| plan.draw(2, 1, Direction::ToShard, s))
            .collect();
        let other_shard: Vec<_> = (0..200)
            .map(|s| plan.draw(1, 2, Direction::ToShard, s))
            .collect();
        let other_dir: Vec<_> = (0..200)
            .map(|s| plan.draw(1, 1, Direction::FromShard, s))
            .collect();
        assert_ne!(base, other_round, "round must separate schedules");
        assert_ne!(base, other_shard, "shard must separate schedules");
        assert_ne!(base, other_dir, "direction must separate schedules");
    }

    #[test]
    fn different_transport_seeds_give_different_schedules() {
        let a = TransportFaultPlan::new(TransportFaultConfig::chaos(1));
        let b = TransportFaultPlan::new(TransportFaultConfig::chaos(2));
        let differs = (0..200)
            .any(|s| a.draw(0, 0, Direction::ToShard, s) != b.draw(0, 0, Direction::ToShard, s));
        assert!(differs, "transport schedules must depend on the seed");
    }

    #[test]
    fn certain_transport_faults_always_fire_within_bounds() {
        let plan = TransportFaultPlan::new(TransportFaultConfig {
            seed: 3,
            drop_prob: 1.0,
            duplicate_prob: 1.0,
            reorder_prob: 1.0,
            delay_prob: 1.0,
            delay_max_ms: 25.0,
            corrupt_prob: 1.0,
        });
        for seq in 0..100 {
            let f = plan.draw(1, 0, Direction::FromShard, seq);
            assert!(f.drop && f.duplicate && f.reorder);
            assert!((0.0..=25.0).contains(&f.delay_ms));
            let (_, mask) = f.corrupt.expect("corruption must fire");
            assert_ne!(mask, 0, "a zero XOR mask would be a no-op");
        }
    }

    #[test]
    fn transport_fault_frequencies_track_probabilities() {
        let plan = TransportFaultPlan::new(TransportFaultConfig {
            seed: 11,
            drop_prob: 0.3,
            ..TransportFaultConfig::none()
        });
        let n = 2000u64;
        let drops = (0..n)
            .filter(|&s| plan.draw(0, 0, Direction::ToShard, s).drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!(
            (0.25..0.35).contains(&rate),
            "drop rate {rate} far from 0.3"
        );
    }

    #[test]
    #[should_panic(expected = "drop_prob")]
    fn rejects_out_of_range_transport_probability() {
        let _ = TransportFaultPlan::new(TransportFaultConfig {
            drop_prob: 1.5,
            ..TransportFaultConfig::none()
        });
    }

    #[test]
    fn transport_config_serializes_round_trip() {
        let cfg = TransportFaultConfig::chaos(9);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: TransportFaultConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        // An empty object is the inert default: old configs keep parsing.
        let old: TransportFaultConfig = serde_json::from_str("{}").unwrap();
        assert_eq!(old, TransportFaultConfig::none());
    }
}
