//! # fedca-sim
//!
//! Virtual-time testbed standing in for the paper's 128-node EC2 cluster.
//!
//! The original evaluation runs on `c6i.large` clients throttled to
//! 13.7 Mbps with `wondershaper`, with *injected* heterogeneity (FedScale
//! speed ratios) and dynamicity (fast/slow toggling with Γ(2,40)/Γ(2,6)
//! durations and U(1,5) slowdowns — §5.1). Every one of those signals is a
//! model already, so this crate replaces wall-clock with a deterministic
//! virtual timeline while keeping the same distributions:
//!
//! * [`device`] — per-client piecewise-constant speed processes
//!   (heterogeneous base speed × dynamic fast/slow toggling) that integrate
//!   work into virtual seconds;
//! * [`network`] — bandwidth-limited links with FIFO queuing, so eager
//!   transmissions genuinely overlap with compute and contend with the
//!   final update upload;
//! * [`trace`] — FedScale-like heavy-tailed speed-ratio sampling;
//! * [`engine`] — round-completion arithmetic (partial aggregation waits
//!   for the earliest fraction of clients, §5.1's 90%);
//! * [`faults`] — seeded deterministic fault injection (crashes, worker
//!   panics, result loss/delay, bandwidth degradation, deadline slip) so
//!   chaos runs are exactly reproducible;
//! * [`stream`] — counter-based RNG stream derivation: every per-client
//!   stream is keyed by `(seed, domain, client id)`, so client state is
//!   rederivable on demand in any order.
//!
//! Virtual time is `f64` seconds ([`SimTime`]). Everything is deterministic
//! given client seeds, which is what makes the FL experiments reproducible
//! regardless of OS thread scheduling.

pub mod device;
pub mod engine;
pub mod faults;
pub mod network;
pub mod stream;
pub mod trace;

/// Virtual time in seconds since the start of the experiment.
pub type SimTime = f64;

/// Bytes per f32 model parameter on the wire (no quantization — the paper's
/// baseline transmits fp32).
pub const BYTES_PER_PARAM: f64 = 4.0;
