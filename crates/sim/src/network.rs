//! Bandwidth-limited links with FIFO queuing.
//!
//! Each client has an uplink and a downlink throttled to the paper's
//! 13.7 Mbps (the FedScale average the authors configure with
//! `wondershaper`); the server's 10 Gbps side is wide enough to never be
//! the bottleneck for ≤128 clients, matching §5.1. Eager transmissions
//! enqueue on the client's uplink while compute continues — transfer
//! completion is what the FL round logic observes.

use crate::SimTime;
use serde::{Deserialize, Serialize};

/// 13.7 Mbps in bytes/second (paper's per-client link).
pub const PAPER_CLIENT_BANDWIDTH_BPS: f64 = 13.7e6 / 8.0;

/// One completed transfer, for logging/asserting overlap behaviour.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// When the payload became ready to send.
    pub ready: SimTime,
    /// When the link actually started sending (≥ ready, FIFO).
    pub start: SimTime,
    /// When the last byte left the link.
    pub end: SimTime,
    /// Payload size in bytes.
    pub bytes: f64,
}

/// A half-duplex FIFO link with fixed bandwidth.
#[derive(Clone, Debug)]
pub struct Link {
    bandwidth_bytes_per_sec: f64,
    /// Multiplier on the nominal bandwidth (fault injection: a degraded
    /// link runs at `rate_scale` of nominal for as long as the scale is
    /// set). Always 1.0 on a healthy link.
    rate_scale: f64,
    busy_until: SimTime,
    log: Vec<Transfer>,
}

impl Link {
    /// Creates a link with the given bandwidth in **bytes per second**.
    ///
    /// # Panics
    /// Panics if the bandwidth is not positive.
    pub fn new(bandwidth_bytes_per_sec: f64) -> Self {
        assert!(bandwidth_bytes_per_sec > 0.0, "bandwidth must be positive");
        Link {
            bandwidth_bytes_per_sec,
            rate_scale: 1.0,
            busy_until: 0.0,
            log: Vec::new(),
        }
    }

    /// A client link at the paper's 13.7 Mbps.
    pub fn paper_client() -> Self {
        Link::new(PAPER_CLIENT_BANDWIDTH_BPS)
    }

    /// Counter-derived per-client link: the link's identity is a pure
    /// function of `(master_seed, client id)`. The paper gives every client
    /// the same wondershaper-throttled 13.7 Mbps, so no draw is consumed
    /// today, but hydration routes through this constructor so a per-client
    /// bandwidth distribution can slot in without touching the round loop.
    pub fn for_client(_master_seed: u64, _id: u64) -> Self {
        Link::paper_client()
    }

    /// Seconds needed to push `bytes` through an idle link at its current
    /// (possibly degraded) rate.
    pub fn serialize_time(&self, bytes: f64) -> f64 {
        bytes / (self.bandwidth_bytes_per_sec * self.rate_scale)
    }

    /// Degrades (or restores) the link to `scale` of its nominal bandwidth.
    /// Fault-injection hook; transfers already enqueued are unaffected.
    ///
    /// # Panics
    /// Panics unless `scale` is in `(0, 1]`.
    pub fn set_rate_scale(&mut self, scale: f64) {
        assert!(
            scale > 0.0 && scale <= 1.0,
            "rate scale must be in (0, 1], got {scale}"
        );
        self.rate_scale = scale;
    }

    /// The current bandwidth multiplier (1.0 = healthy).
    pub fn rate_scale(&self) -> f64 {
        self.rate_scale
    }

    /// Enqueues a transfer that becomes ready at `ready`; returns the
    /// completion time. FIFO: a transfer starts at
    /// `max(ready, previous completion)`.
    ///
    /// # Panics
    /// Panics if `bytes < 0` or `ready < 0`.
    pub fn transmit(&mut self, ready: SimTime, bytes: f64) -> SimTime {
        assert!(bytes >= 0.0, "negative payload");
        assert!(ready >= 0.0, "negative time");
        let start = ready.max(self.busy_until);
        let end = start + self.serialize_time(bytes);
        self.busy_until = end;
        self.log.push(Transfer {
            ready,
            start,
            end,
            bytes,
        });
        end
    }

    /// When the link next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Restores the FIFO queue head (checkpoint/restore). The transfer log
    /// is observational and not restored; rate scale is reapplied per round
    /// by fault injection.
    ///
    /// # Panics
    /// Panics if `t < 0`.
    pub fn restore_busy_until(&mut self, t: SimTime) {
        assert!(t >= 0.0, "negative time");
        self.busy_until = t;
    }

    /// All transfers carried so far, in enqueue order.
    pub fn log(&self) -> &[Transfer] {
        &self.log
    }

    /// Total payload bytes this link has carried since the last reset —
    /// compressed uploads show up here at their compressed size, which is
    /// what the compression-equivalence tests assert on.
    pub fn bytes_carried(&self) -> f64 {
        self.log.iter().map(|t| t.bytes).sum()
    }

    /// Resets the link to idle at time 0 (new experiment), keeping bandwidth
    /// and clearing any degradation.
    pub fn reset(&mut self) {
        self.busy_until = 0.0;
        self.rate_scale = 1.0;
        self.log.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialize_time_is_bytes_over_bandwidth() {
        let link = Link::new(1000.0);
        assert!((link.serialize_time(500.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn paper_bandwidth_matches_eval_setup() {
        // 139.4 MB (the paper's WRN model size) at 13.7 Mbps ≈ 81 s — the
        // communication bottleneck §2.1 describes.
        let link = Link::paper_client();
        let t = link.serialize_time(139.4e6);
        assert!((75.0..90.0).contains(&t), "WRN upload time {t}");
    }

    #[test]
    fn fifo_queueing_serializes_transfers() {
        let mut link = Link::new(100.0); // 100 B/s
        let e1 = link.transmit(0.0, 100.0); // 0..1
        let e2 = link.transmit(0.5, 100.0); // queued: 1..2
        let e3 = link.transmit(5.0, 100.0); // idle gap: 5..6
        assert!((e1 - 1.0).abs() < 1e-12);
        assert!((e2 - 2.0).abs() < 1e-12);
        assert!((e3 - 6.0).abs() < 1e-12);
        let log = link.log();
        assert_eq!(log[1].start, 1.0);
        assert_eq!(log[2].start, 5.0);
    }

    #[test]
    fn zero_bytes_completes_at_queue_head() {
        let mut link = Link::new(10.0);
        let _ = link.transmit(0.0, 100.0); // busy until 10
        let e = link.transmit(2.0, 0.0);
        assert!((e - 10.0).abs() < 1e-12);
    }

    #[test]
    fn degraded_link_slows_by_the_scale_factor() {
        let mut link = Link::new(100.0);
        link.set_rate_scale(0.25); // 25 B/s effective
        assert!((link.serialize_time(100.0) - 4.0).abs() < 1e-12);
        let e = link.transmit(0.0, 100.0);
        assert!((e - 4.0).abs() < 1e-12);
        link.set_rate_scale(1.0);
        assert!((link.serialize_time(100.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "rate scale")]
    fn rejects_zero_rate_scale() {
        Link::new(10.0).set_rate_scale(0.0);
    }

    #[test]
    fn bytes_carried_sums_the_transfer_log() {
        let mut link = Link::new(100.0);
        assert_eq!(link.bytes_carried(), 0.0);
        let _ = link.transmit(0.0, 100.0);
        let _ = link.transmit(0.5, 25.0);
        assert!((link.bytes_carried() - 125.0).abs() < 1e-12);
        link.reset();
        assert_eq!(link.bytes_carried(), 0.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut link = Link::new(10.0);
        let _ = link.transmit(0.0, 50.0);
        link.set_rate_scale(0.5);
        link.reset();
        assert_eq!(link.busy_until(), 0.0);
        assert_eq!(link.rate_scale(), 1.0);
        assert!(link.log().is_empty());
    }
}
