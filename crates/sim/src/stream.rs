//! Counter-based RNG stream derivation.
//!
//! Every piece of per-client identity in the testbed — data shard, base
//! speed, device-speed process, profiler sample indices — is a pure
//! function of `(master seed, domain, client id)`. The key is produced by
//! [`mix`], a SplitMix64-style finalizer over the three inputs, and seeds a
//! dedicated [`StdRng`] stream per `(domain, client)` pair. Because no
//! stream is ever shared across clients, derivations are *query-order
//! independent*: hydrating clients in any order, any number of times, on
//! any number of threads yields byte-identical state. This is the same
//! discipline [`crate::faults`] uses for its `(round, client)` fault draws.
//!
//! Domain constants occupy the slot the fault plan uses for the round
//! index; they are large 64-bit tags so they can never collide with a
//! realistic round number.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stream domain: a client's data-shard derivation.
pub const DOMAIN_SHARD: u64 = 0x5348_4152_4421_7A01;
/// Stream domain: a client's FedScale-like base-speed factor.
pub const DOMAIN_SPEED: u64 = 0x5350_4545_4421_7A02;
/// Stream domain: a client's device-speed (fast/slow toggling) process.
pub const DOMAIN_DEVICE: u64 = 0x4445_5649_4321_7A03;
/// Stream domain: a client's profiler sample-index draws.
pub const DOMAIN_PROFILER: u64 = 0x5052_4F46_4921_7A04;
/// Stream domain: a client's per-round local-training RNG base seed.
pub const DOMAIN_CLIENT: u64 = 0x434C_4945_4E21_7A05;
/// Stream domain: a client's placement onto a shard process
/// (`ShardAssignment::Mixed`). Placement is trajectory-neutral, but it still
/// gets its own domain so a hash seed equal to the experiment seed cannot
/// correlate placement with the data partition.
pub const DOMAIN_TOPOLOGY: u64 = 0x544F_504F_4C21_7A06;
/// Stream domain: the shard transport's per-frame fault draws
/// (`TransportFaultPlan`). Transport faults are trajectory-neutral by
/// construction (the supervision layer recovers every injected fault), but
/// the schedule still needs its own domain so a transport seed equal to the
/// experiment seed cannot correlate frame faults with anything the
/// trajectory depends on.
pub const DOMAIN_TRANSPORT: u64 = 0x5452_414E_5321_7A07;

/// SplitMix64-style mixing of a master seed with two stream coordinates
/// (domain/round and client id). Shared by every counter-derived stream in
/// the workspace, including the fault plan's `(seed, round, client)` draws.
pub fn mix(seed: u64, a: u64, b: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB))
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A fresh RNG positioned at the start of the `(seed, domain, client)`
/// stream. Two calls with the same key always return identical streams.
pub fn client_rng(seed: u64, domain: u64, client: u64) -> StdRng {
    StdRng::seed_from_u64(mix(seed, domain, client))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn mix_separates_every_coordinate() {
        let base = mix(1, 2, 3);
        assert_ne!(base, mix(2, 2, 3));
        assert_ne!(base, mix(1, 3, 3));
        assert_ne!(base, mix(1, 2, 4));
        // Swapping coordinates must not alias.
        assert_ne!(mix(1, 2, 3), mix(1, 3, 2));
    }

    #[test]
    fn domains_never_alias_for_the_same_client() {
        let domains = [
            DOMAIN_SHARD,
            DOMAIN_SPEED,
            DOMAIN_DEVICE,
            DOMAIN_PROFILER,
            DOMAIN_CLIENT,
            DOMAIN_TOPOLOGY,
            DOMAIN_TRANSPORT,
        ];
        for (i, &a) in domains.iter().enumerate() {
            for &b in &domains[i + 1..] {
                assert_ne!(mix(42, a, 7), mix(42, b, 7));
            }
        }
    }

    #[test]
    fn client_rng_is_query_order_independent() {
        // Drawing client 5's stream before or after client 9's must not
        // change either stream.
        let mut a5 = client_rng(9, DOMAIN_DEVICE, 5);
        let mut a9 = client_rng(9, DOMAIN_DEVICE, 9);
        let first5: u64 = a5.gen();
        let first9: u64 = a9.gen();

        let mut b9 = client_rng(9, DOMAIN_DEVICE, 9);
        let again9: u64 = b9.gen();
        let mut b5 = client_rng(9, DOMAIN_DEVICE, 5);
        let again5: u64 = b5.gen();
        assert_eq!(first5, again5);
        assert_eq!(first9, again9);
    }
}
