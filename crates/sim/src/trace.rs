//! FedScale-like device heterogeneity.
//!
//! The paper maps each emulated client to a device from the FedScale trace
//! so that pairwise speed *ratios* match real-world measurements (§5.1).
//! The trace itself is not redistributable, but FedScale's reported compute
//! capabilities are heavy-tailed across phone models; a lognormal with
//! σ ≈ 0.6 clamped to [0.2×, 5×] reproduces the ratio spread the paper
//! relies on (fastest/slowest ≈ 25×, most mass within 3× of median) —
//! DESIGN.md substitution 6.

use crate::stream::{client_rng, DOMAIN_SPEED};
use rand::Rng;
use rand_distr::{Distribution, LogNormal};

/// Default lognormal σ for speed factors.
pub const DEFAULT_SIGMA: f64 = 0.6;
/// Slowest device multiplier.
pub const MIN_SPEED: f64 = 0.2;
/// Fastest device multiplier.
pub const MAX_SPEED: f64 = 5.0;

/// Samples `n` relative device speed factors (median ≈ 1.0).
pub fn sample_speed_factors(n: usize, sigma: f64, rng: &mut impl Rng) -> Vec<f64> {
    let dist = LogNormal::new(0.0, sigma).expect("valid lognormal");
    (0..n)
        .map(|_| dist.sample(rng).clamp(MIN_SPEED, MAX_SPEED))
        .collect()
}

/// Samples with the default FedScale-like parameters.
pub fn fedscale_like(n: usize, rng: &mut impl Rng) -> Vec<f64> {
    sample_speed_factors(n, DEFAULT_SIGMA, rng)
}

/// Counter-derived speed factor for one client: a pure function of
/// `(seed, id)` on the [`DOMAIN_SPEED`](crate::stream::DOMAIN_SPEED)
/// stream, so a population of any size costs O(1) per *hydrated* client
/// instead of O(n) up front, and querying clients in any order yields
/// byte-identical factors.
///
/// The reference sequence is pinned by a unit test: the first factors for
/// seed 42 are documented there bit-for-bit, so any change to the mixing
/// or the distribution is caught as a break, not a silent drift.
pub fn speed_factor_at(seed: u64, sigma: f64, id: u64) -> f64 {
    let dist = LogNormal::new(0.0, sigma).expect("valid lognormal");
    dist.sample(&mut client_rng(seed, DOMAIN_SPEED, id))
        .clamp(MIN_SPEED, MAX_SPEED)
}

/// [`speed_factor_at`] with the default FedScale-like σ — the per-client
/// counterpart of [`fedscale_like`].
pub fn fedscale_like_at(seed: u64, id: u64) -> f64 {
    speed_factor_at(seed, DEFAULT_SIGMA, id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn factors_are_clamped_and_heterogeneous() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = fedscale_like(500, &mut rng);
        assert!(f.iter().all(|&x| (MIN_SPEED..=MAX_SPEED).contains(&x)));
        let maxf = f.iter().cloned().fold(f64::MIN, f64::max);
        let minf = f.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            maxf / minf > 3.0,
            "not heterogeneous enough: {minf}..{maxf}"
        );
    }

    #[test]
    fn median_near_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut f = fedscale_like(2001, &mut rng);
        f.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = f[1000];
        assert!((0.8..1.25).contains(&median), "median {median}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = fedscale_like(10, &mut StdRng::seed_from_u64(3));
        let b = fedscale_like(10, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn per_client_factors_are_clamped_and_heterogeneous() {
        let f: Vec<f64> = (0..500).map(|id| fedscale_like_at(1, id)).collect();
        assert!(f.iter().all(|&x| (MIN_SPEED..=MAX_SPEED).contains(&x)));
        let maxf = f.iter().cloned().fold(f64::MIN, f64::max);
        let minf = f.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            maxf / minf > 3.0,
            "not heterogeneous enough: {minf}..{maxf}"
        );
        // Distinct ids draw from distinct streams.
        assert_ne!(fedscale_like_at(1, 0), fedscale_like_at(1, 1));
        // Same key, same factor — no shared stream to advance.
        assert_eq!(fedscale_like_at(1, 3), fedscale_like_at(1, 3));
    }

    #[test]
    fn per_client_reference_sequence_is_pinned() {
        // The documented reference sequence for seed 42: any change to the
        // stream keying, the lognormal sampling, or the clamp shows up here
        // as a bit-level mismatch. Values are compared via `to_bits` so the
        // pin is exact, not approximate.
        let expected: [u64; 4] = [
            REFERENCE_SEED_42[0],
            REFERENCE_SEED_42[1],
            REFERENCE_SEED_42[2],
            REFERENCE_SEED_42[3],
        ];
        for (id, &bits) in expected.iter().enumerate() {
            let got = fedscale_like_at(42, id as u64);
            assert_eq!(
                got.to_bits(),
                bits,
                "client {id}: factor {got} drifted from the reference sequence"
            );
        }
    }

    /// First four factors of the `fedscale_like_at(42, ·)` reference
    /// sequence, as `f64::to_bits` values:
    /// 1.0029742686312393, 0.47609057674658867, 0.2 (clamped at
    /// `MIN_SPEED`), 0.37770911502477467.
    const REFERENCE_SEED_42: [u64; 4] = [
        0x3FF0_0C2E_BF28_02D5,
        0x3FDE_7844_9C43_DD35,
        0x3FC9_9999_9999_999A,
        0x3FD8_2C62_DA1B_AE3C,
    ];
}
