//! FedScale-like device heterogeneity.
//!
//! The paper maps each emulated client to a device from the FedScale trace
//! so that pairwise speed *ratios* match real-world measurements (§5.1).
//! The trace itself is not redistributable, but FedScale's reported compute
//! capabilities are heavy-tailed across phone models; a lognormal with
//! σ ≈ 0.6 clamped to [0.2×, 5×] reproduces the ratio spread the paper
//! relies on (fastest/slowest ≈ 25×, most mass within 3× of median) —
//! DESIGN.md substitution 6.

use rand::Rng;
use rand_distr::{Distribution, LogNormal};

/// Default lognormal σ for speed factors.
pub const DEFAULT_SIGMA: f64 = 0.6;
/// Slowest device multiplier.
pub const MIN_SPEED: f64 = 0.2;
/// Fastest device multiplier.
pub const MAX_SPEED: f64 = 5.0;

/// Samples `n` relative device speed factors (median ≈ 1.0).
pub fn sample_speed_factors(n: usize, sigma: f64, rng: &mut impl Rng) -> Vec<f64> {
    let dist = LogNormal::new(0.0, sigma).expect("valid lognormal");
    (0..n)
        .map(|_| dist.sample(rng).clamp(MIN_SPEED, MAX_SPEED))
        .collect()
}

/// Samples with the default FedScale-like parameters.
pub fn fedscale_like(n: usize, rng: &mut impl Rng) -> Vec<f64> {
    sample_speed_factors(n, DEFAULT_SIGMA, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn factors_are_clamped_and_heterogeneous() {
        let mut rng = StdRng::seed_from_u64(1);
        let f = fedscale_like(500, &mut rng);
        assert!(f.iter().all(|&x| (MIN_SPEED..=MAX_SPEED).contains(&x)));
        let maxf = f.iter().cloned().fold(f64::MIN, f64::max);
        let minf = f.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            maxf / minf > 3.0,
            "not heterogeneous enough: {minf}..{maxf}"
        );
    }

    #[test]
    fn median_near_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut f = fedscale_like(2001, &mut rng);
        f.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = f[1000];
        assert!((0.8..1.25).contains(&median), "median {median}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = fedscale_like(10, &mut StdRng::seed_from_u64(3));
        let b = fedscale_like(10, &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }
}
