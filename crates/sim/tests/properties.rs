//! Property-based tests for the virtual-time models.

use fedca_sim::device::{DeviceSpeed, DynamicsConfig};
use fedca_sim::engine::{aggregated_clients, round_completion_time};
use fedca_sim::network::Link;
use proptest::prelude::*;

proptest! {
    #[test]
    fn device_time_is_monotone_in_work(
        base in 0.2f64..5.0,
        start in 0.0f64..1000.0,
        w1 in 0.0f64..50.0,
        extra in 0.0f64..50.0,
        seed in 0u64..1000,
    ) {
        let mut d = DeviceSpeed::new(base, DynamicsConfig::paper(), seed);
        let t1 = d.execute(start, w1);
        let t2 = d.execute(start, w1 + extra);
        prop_assert!(t1 >= start);
        prop_assert!(t2 >= t1 - 1e-9, "more work finished earlier: {} vs {}", t2, t1);
        // Work takes at least work/base (device never exceeds base speed)
        // and at most work/(base/slowdown_max).
        prop_assert!(t1 - start >= w1 / base - 1e-6);
        prop_assert!(t1 - start <= w1 / (base / 5.0) + 1e-6);
    }

    #[test]
    fn device_split_work_equals_whole(
        w1 in 0.01f64..20.0,
        w2 in 0.01f64..20.0,
        seed in 0u64..1000,
    ) {
        let mut a = DeviceSpeed::new(1.0, DynamicsConfig::paper(), seed);
        let mut b = DeviceSpeed::new(1.0, DynamicsConfig::paper(), seed);
        let mid = a.execute(0.0, w1);
        let end_split = a.execute(mid, w2);
        let end_whole = b.execute(0.0, w1 + w2);
        prop_assert!((end_split - end_whole).abs() < 1e-6,
            "split {} vs whole {}", end_split, end_whole);
    }

    #[test]
    fn link_is_fifo_and_work_conserving(
        bw in 1.0f64..1e7,
        payloads in prop::collection::vec((0.0f64..1000.0, 0.0f64..1e6), 1..20),
    ) {
        let mut link = Link::new(bw);
        let mut sorted = payloads.clone();
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut prev_end = 0.0f64;
        for (ready, bytes) in sorted {
            let end = link.transmit(ready, bytes);
            prop_assert!(end >= ready + bytes / bw - 1e-9);
            prop_assert!(end >= prev_end, "FIFO violated");
            // Work conserving: starts as soon as ready and idle.
            let expected_start = ready.max(prev_end);
            prop_assert!((end - (expected_start + bytes / bw)).abs() < 1e-6);
            prev_end = end;
        }
    }

    #[test]
    fn completion_time_is_an_arrival_and_fraction_monotone(
        arrivals in prop::collection::vec(0.0f64..1e4, 1..40),
        f1 in 0.05f64..1.0,
        f2 in 0.05f64..1.0,
    ) {
        let t1 = round_completion_time(&arrivals, f1);
        prop_assert!(arrivals.contains(&t1));
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(round_completion_time(&arrivals, lo) <= round_completion_time(&arrivals, hi));
        // Every aggregated client arrived by the completion time.
        let collected = aggregated_clients(&arrivals, f1);
        prop_assert!(!collected.is_empty());
        for &i in &collected {
            prop_assert!(arrivals[i] <= t1);
        }
    }
}
