//! Tier-dispatched server data-plane kernels: scale scans, deterministic
//! level quantization, wire bit-pack/unpack, AXPY, and the fused
//! dequantize-accumulate the aggregator folds quantized uploads with.
//!
//! These are the elementwise/integer kernels behind `compress::quantize`,
//! `compress::wire`, and the coordinator's streaming fold. They reuse the
//! GEMM dispatch machinery ([`crate::gemm::active_kernel`],
//! `FEDCA_FORCE_KERNEL`) but follow a **stricter numerics contract than the
//! GEMM microkernels**: every tier is bit-identical to the scalar reference.
//! GEMM tiers may reassociate their accumulation chains (and FMA contracts
//! the multiply-add rounding), so golden traces are pinned per tier; the
//! data plane has no reductions to reassociate — each output element is a
//! short, fixed sequence of individually-rounded ops — so the vector tiers
//! can and must reproduce the scalar bits exactly:
//!
//! * `max_abs` maxes non-negative floats — exact, order-free — and both
//!   paths ignore NaN inputs (`f32::max` returns the other operand on NaN;
//!   the vector loop keeps the accumulator in `maxps`'s NaN-losing slot).
//! * `quantize_levels` rounds half away from zero like `f32::round`. The
//!   vector tier computes round-to-nearest-even and then bumps exact halves
//!   by `copysign(1, t)`; the `t − rte` probe is exact (Sterbenz), so the
//!   bump fires precisely on the ties. NaN survives the signed clamp (limit
//!   operands first) and converts to level 0, matching scalar `NaN as i8`.
//! * `axpy` and the fused `axpy_quantized` use mul-then-add — never FMA —
//!   because scalar `y + alpha * x` rounds the product before the sum.
//! * Bit-packing is pure integer shuffling; eight `width`-bit fields always
//!   span exactly `width` bytes, which is what the u64-blocked fast paths
//!   exploit.
//!
//! Only AVX2 has vector implementations today; the NEON tier falls back to
//! the scalar path (the [`crate::simd`] precedent), which is free here
//! precisely because the contract is bit-identity.

use crate::gemm::{active_kernel, Kernel};

/// Number of bytes `n` fields of `width` bits pack into.
pub fn packed_len(n: usize, width: u32) -> usize {
    (n as u64 * width as u64).div_ceil(8) as usize
}

/// Max of `|x_i|` over the slice, `0.0` when empty. NaN elements are
/// ignored (as `f32::max` does); the result is NaN-free and non-negative.
pub fn max_abs_on(kernel: Kernel, x: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx2 {
        // SAFETY: the Avx2 tier is only selectable when runtime detection
        // confirmed avx2+fma (see `gemm::detect_kernel`).
        return unsafe { avx2::max_abs(x) };
    }
    let _ = kernel;
    scalar::max_abs(x)
}

/// [`max_abs_on`] with the process-wide dispatched tier.
pub fn max_abs(x: &[f32]) -> f32 {
    max_abs_on(active_kernel(), x)
}

/// Deterministic round-to-nearest levels: `out[i] = round(x[i] / scale ·
/// num_levels)` clamped to `[-num_levels, num_levels]`, rounding half away
/// from zero exactly like `f32::round`.
///
/// # Panics
/// Panics if the slices differ in length or `scale == 0` (callers handle
/// the zero-vector case by emitting all-zero levels).
pub fn quantize_levels_on(kernel: Kernel, x: &[f32], scale: f32, num_levels: u8, out: &mut [i8]) {
    assert_eq!(x.len(), out.len(), "quantize_levels: length mismatch");
    assert!(scale != 0.0, "quantize_levels: zero scale");
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx2 {
        // SAFETY: tier availability checked at dispatch (see `max_abs_on`).
        return unsafe { avx2::quantize_levels(x, scale, num_levels, out) };
    }
    let _ = kernel;
    scalar::quantize_levels(x, scale, num_levels, out)
}

/// [`quantize_levels_on`] with the process-wide dispatched tier.
pub fn quantize_levels(x: &[f32], scale: f32, num_levels: u8, out: &mut [i8]) {
    quantize_levels_on(active_kernel(), x, scale, num_levels, out)
}

/// Bit-packs signed levels as offset-binary (`level + num_levels`) fields
/// of `width` bits, little-endian bit order — the `compress::wire` layout.
///
/// Levels must lie in `[-num_levels, num_levels]` (the quantizers
/// guarantee it); out-of-range levels would overflow their field.
///
/// # Panics
/// Panics if `width` is outside `[1, 8]` or `out` is not exactly
/// [`packed_len`] bytes.
pub fn pack_levels_on(kernel: Kernel, levels: &[i8], num_levels: u8, width: u32, out: &mut [u8]) {
    assert!((1..=8).contains(&width), "pack_levels: width out of range");
    assert_eq!(
        out.len(),
        packed_len(levels.len(), width),
        "pack_levels: output length mismatch"
    );
    match kernel {
        Kernel::Scalar => scalar::pack_levels(levels, num_levels, width, out),
        // The "vector" tier for packing is the u64-blocked path: eight
        // fields assemble into one word with three shifts per field, no
        // per-bit carry loop. Same bytes, ~8x fewer iterations.
        Kernel::Avx2 | Kernel::Neon => blocked::pack_levels(levels, num_levels, width, out),
    }
}

/// [`pack_levels_on`] with the process-wide dispatched tier.
pub fn pack_levels(levels: &[i8], num_levels: u8, width: u32, out: &mut [u8]) {
    pack_levels_on(active_kernel(), levels, num_levels, width, out)
}

/// Inverse of [`pack_levels`]: extracts `out.len()` offset-binary fields
/// and recenters them to signed levels. Arbitrary (even malformed) packed
/// bytes decode deterministically: the field value is truncated to `i8`
/// exactly as the scalar `as i8` cast does.
///
/// # Panics
/// Panics if `width` is outside `[1, 8]` or `packed` is shorter than
/// [`packed_len`] bytes.
pub fn unpack_levels_on(kernel: Kernel, packed: &[u8], num_levels: u8, width: u32, out: &mut [i8]) {
    assert!(
        (1..=8).contains(&width),
        "unpack_levels: width out of range"
    );
    assert!(
        packed.len() >= packed_len(out.len(), width),
        "unpack_levels: packed buffer too short"
    );
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx2 {
        // SAFETY: tier availability checked at dispatch (see `max_abs_on`).
        return unsafe { avx2::unpack_levels(packed, num_levels, width, out) };
    }
    let _ = kernel;
    scalar::unpack_levels(packed, num_levels, width, out)
}

/// [`unpack_levels_on`] with the process-wide dispatched tier.
pub fn unpack_levels(packed: &[u8], num_levels: u8, width: u32, out: &mut [i8]) {
    unpack_levels_on(active_kernel(), packed, num_levels, width, out)
}

/// Dequantizes widened levels: `out[i] = levels[i] / num_levels · scale`.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn dequantize_levels_on(
    kernel: Kernel,
    levels: &[i8],
    scale: f32,
    num_levels: u8,
    out: &mut [f32],
) {
    assert_eq!(
        levels.len(),
        out.len(),
        "dequantize_levels: length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx2 {
        // SAFETY: tier availability checked at dispatch (see `max_abs_on`).
        return unsafe { avx2::dequantize_levels(levels, scale, num_levels, out) };
    }
    let _ = kernel;
    scalar::dequantize_levels(levels, scale, num_levels, out)
}

/// [`dequantize_levels_on`] with the process-wide dispatched tier.
pub fn dequantize_levels(levels: &[i8], scale: f32, num_levels: u8, out: &mut [f32]) {
    dequantize_levels_on(active_kernel(), levels, scale, num_levels, out)
}

/// Dequantizes straight from packed wire bytes, skipping the widened `i8`
/// intermediate: `out[i] = unpack(i) / num_levels · scale`.
///
/// # Panics
/// Panics if `width` is outside `[1, 8]` or `packed` is shorter than
/// [`packed_len`] bytes.
pub fn dequantize_packed_on(
    kernel: Kernel,
    packed: &[u8],
    scale: f32,
    num_levels: u8,
    width: u32,
    out: &mut [f32],
) {
    assert!(
        (1..=8).contains(&width),
        "dequantize_packed: width out of range"
    );
    assert!(
        packed.len() >= packed_len(out.len(), width),
        "dequantize_packed: packed buffer too short"
    );
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx2 {
        // SAFETY: tier availability checked at dispatch (see `max_abs_on`).
        return unsafe { avx2::dequantize_packed(packed, scale, num_levels, width, out) };
    }
    let _ = kernel;
    scalar::dequantize_packed(packed, scale, num_levels, width, out)
}

/// [`dequantize_packed_on`] with the process-wide dispatched tier.
pub fn dequantize_packed(packed: &[u8], scale: f32, num_levels: u8, width: u32, out: &mut [f32]) {
    dequantize_packed_on(active_kernel(), packed, scale, num_levels, width, out)
}

/// `y += alpha * x`, mul-then-add per element (bit-identical across tiers).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy_on(kernel: Kernel, alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx2 {
        // SAFETY: tier availability checked at dispatch (see `max_abs_on`).
        return unsafe { avx2::axpy(alpha, x, y) };
    }
    let _ = kernel;
    scalar::axpy(alpha, x, y)
}

/// [`axpy_on`] with the process-wide dispatched tier.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    axpy_on(active_kernel(), alpha, x, y)
}

/// The fused data-plane headline: unpacks `width`-bit offset-binary fields,
/// dequantizes (`level / num_levels · scale`), and accumulates
/// `y[i] += alpha * value` in one pass — no widened level buffer, no dense
/// intermediate. Bit-identical to `unpack → dequantize → axpy`.
///
/// # Panics
/// Panics if `width` is outside `[1, 8]` or `packed` is shorter than
/// [`packed_len`] bytes for `y.len()` fields.
pub fn axpy_quantized_on(
    kernel: Kernel,
    alpha: f32,
    scale: f32,
    num_levels: u8,
    width: u32,
    packed: &[u8],
    y: &mut [f32],
) {
    assert!(
        (1..=8).contains(&width),
        "axpy_quantized: width out of range"
    );
    assert!(
        packed.len() >= packed_len(y.len(), width),
        "axpy_quantized: packed buffer too short"
    );
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx2 {
        // SAFETY: tier availability checked at dispatch (see `max_abs_on`).
        return unsafe { avx2::axpy_quantized(alpha, scale, num_levels, width, packed, y) };
    }
    let _ = kernel;
    scalar::axpy_quantized(alpha, scale, num_levels, width, packed, y)
}

/// [`axpy_quantized_on`] with the process-wide dispatched tier.
pub fn axpy_quantized(
    alpha: f32,
    scale: f32,
    num_levels: u8,
    width: u32,
    packed: &[u8],
    y: &mut [f32],
) {
    axpy_quantized_on(active_kernel(), alpha, scale, num_levels, width, packed, y)
}

/// Whether every element is finite — the aggregator's poison scan.
pub fn all_finite_on(kernel: Kernel, x: &[f32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    if kernel == Kernel::Avx2 {
        // SAFETY: tier availability checked at dispatch (see `max_abs_on`).
        return unsafe { avx2::all_finite(x) };
    }
    let _ = kernel;
    scalar::all_finite(x)
}

/// [`all_finite_on`] with the process-wide dispatched tier.
pub fn all_finite(x: &[f32]) -> bool {
    all_finite_on(active_kernel(), x)
}

/// Scalar reference tier. Every vector tier is tested bit-identical to
/// these loops, and the wire codec's byte layout is defined by them.
mod scalar {
    pub fn max_abs(x: &[f32]) -> f32 {
        x.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    pub fn quantize_levels(x: &[f32], scale: f32, num_levels: u8, out: &mut [i8]) {
        let l = num_levels as f32;
        for (o, &v) in out.iter_mut().zip(x) {
            let t = v / scale * l;
            *o = t.round().clamp(-l, l) as i8;
        }
    }

    pub fn pack_levels(levels: &[i8], num_levels: u8, width: u32, out: &mut [u8]) {
        let mut acc: u32 = 0;
        let mut nbits: u32 = 0;
        let mut w = 0usize;
        for &lev in levels {
            let u = (lev as i16 + num_levels as i16) as u32;
            acc |= u << nbits;
            nbits += width;
            while nbits >= 8 {
                out[w] = (acc & 0xFF) as u8;
                w += 1;
                acc >>= 8;
                nbits -= 8;
            }
        }
        if nbits > 0 {
            out[w] = (acc & 0xFF) as u8;
        }
    }

    pub fn unpack_levels(packed: &[u8], num_levels: u8, width: u32, out: &mut [i8]) {
        let mask: u32 = (1 << width) - 1;
        let mut acc: u32 = 0;
        let mut nbits: u32 = 0;
        let mut r = 0usize;
        for o in out.iter_mut() {
            while nbits < width {
                acc |= (packed[r] as u32) << nbits;
                r += 1;
                nbits += 8;
            }
            let u = acc & mask;
            acc >>= width;
            nbits -= width;
            *o = (u as i16 - num_levels as i16) as i8;
        }
    }

    pub fn dequantize_levels(levels: &[i8], scale: f32, num_levels: u8, out: &mut [f32]) {
        let l = num_levels as f32;
        for (o, &lev) in out.iter_mut().zip(levels) {
            *o = lev as f32 / l * scale;
        }
    }

    pub fn dequantize_packed(
        packed: &[u8],
        scale: f32,
        num_levels: u8,
        width: u32,
        out: &mut [f32],
    ) {
        let l = num_levels as f32;
        let mask: u32 = (1 << width) - 1;
        let (mut acc, mut nbits, mut r) = (0u32, 0u32, 0usize);
        for o in out.iter_mut() {
            while nbits < width {
                acc |= (packed[r] as u32) << nbits;
                r += 1;
                nbits += 8;
            }
            let lev = ((acc & mask) as i16 - num_levels as i16) as i8;
            acc >>= width;
            nbits -= width;
            *o = lev as f32 / l * scale;
        }
    }

    pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    pub fn axpy_quantized(
        alpha: f32,
        scale: f32,
        num_levels: u8,
        width: u32,
        packed: &[u8],
        y: &mut [f32],
    ) {
        let l = num_levels as f32;
        let mask: u32 = (1 << width) - 1;
        let (mut acc, mut nbits, mut r) = (0u32, 0u32, 0usize);
        for yi in y.iter_mut() {
            while nbits < width {
                acc |= (packed[r] as u32) << nbits;
                r += 1;
                nbits += 8;
            }
            let lev = ((acc & mask) as i16 - num_levels as i16) as i8;
            acc >>= width;
            nbits -= width;
            *yi += alpha * (lev as f32 / l * scale);
        }
    }

    pub fn all_finite(x: &[f32]) -> bool {
        x.iter().all(|v| v.is_finite())
    }
}

/// u64-blocked bit-packing: eight `width`-bit fields are always exactly
/// `width` bytes, so whole groups assemble into one word. Portable (no
/// intrinsics) — it is the "vector" packing tier on every SIMD target.
mod blocked {
    pub fn pack_levels(levels: &[i8], num_levels: u8, width: u32, out: &mut [u8]) {
        let n = levels.len();
        let wbytes = width as usize;
        let mut g = 0usize;
        // Whole groups of 8, while an 8-byte store fits: bytes past the
        // group's `width` are zero and get overwritten by the next write.
        while (g + 1) * 8 <= n && g * wbytes + 8 <= out.len() {
            let mut word = 0u64;
            for (j, &lev) in levels[g * 8..g * 8 + 8].iter().enumerate() {
                let u = (lev as i16 + num_levels as i16) as u32 as u64;
                word |= u << (j as u32 * width);
            }
            out[g * wbytes..g * wbytes + 8].copy_from_slice(&word.to_le_bytes());
            g += 1;
        }
        // Scalar tail from the (byte-aligned) group boundary.
        super::scalar::pack_levels(&levels[g * 8..], num_levels, width, &mut out[g * wbytes..]);
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    /// Shuffle control gathering the low byte of each 32-bit lane into the
    /// first four bytes of its 128-bit half — the truncating i32→i8 cast.
    #[inline(always)]
    unsafe fn low_byte_ctrl() -> __m256i {
        _mm256_setr_epi8(
            0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, //
            0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
        )
    }

    /// Stores the low byte of each of the eight i32 lanes to `dst`.
    #[inline(always)]
    unsafe fn store_low_bytes(iv: __m256i, dst: *mut i8) {
        let bytes = _mm256_shuffle_epi8(iv, low_byte_ctrl());
        let lo = _mm256_castsi256_si128(bytes);
        let hi = _mm256_extracti128_si256::<1>(bytes);
        let merged = _mm_unpacklo_epi32(lo, hi);
        _mm_storel_epi64(dst as *mut __m128i, merged);
    }

    /// Extracts eight consecutive `width`-bit fields from one u64 word into
    /// the 32-bit lanes of the result.
    #[inline(always)]
    unsafe fn unpack8(word: u64, width: u32, mask: u32) -> __m256i {
        let w = width as i64;
        let bc = _mm256_set1_epi64x(word as i64);
        let m64 = _mm256_set1_epi64x(mask as i64);
        let v0 = _mm256_and_si256(
            _mm256_srlv_epi64(bc, _mm256_setr_epi64x(0, w, 2 * w, 3 * w)),
            m64,
        );
        let v1 = _mm256_and_si256(
            _mm256_srlv_epi64(bc, _mm256_setr_epi64x(4 * w, 5 * w, 6 * w, 7 * w)),
            m64,
        );
        // Fields fit in 32 bits (width <= 8): compress the even 32-bit
        // lanes of v0 into positions 0..4 and of v1 into 4..8.
        let w0 = _mm256_permutevar8x32_epi32(v0, _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0));
        let w1 = _mm256_permutevar8x32_epi32(v1, _mm256_setr_epi32(0, 0, 0, 0, 0, 2, 4, 6));
        _mm256_blend_epi32::<0b1111_0000>(w0, w1)
    }

    /// Truncates each i32 lane to its sign-extended low 8 bits — the
    /// scalar `as i8` cast, lifted lane-wise.
    #[inline(always)]
    unsafe fn truncate_i8(iv: __m256i) -> __m256i {
        _mm256_srai_epi32::<24>(_mm256_slli_epi32::<24>(iv))
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn max_abs(x: &[f32]) -> f32 {
        let n = x.len();
        let abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff));
        let mut acc = _mm256_setzero_ps();
        let mut p = 0;
        while p + 8 <= n {
            let a = _mm256_and_ps(_mm256_loadu_ps(x.as_ptr().add(p)), abs_mask);
            // Accumulator second: maxps returns its second operand when
            // either input is NaN, so NaN elements are ignored exactly
            // like scalar `f32::max`.
            acc = _mm256_max_ps(a, acc);
            p += 8;
        }
        let mut lanes = [0.0f32; 8];
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
        // Lanes are NaN-free and non-negative; max over them is exact and
        // order-free, so the reduction order cannot matter.
        let mut m = lanes.iter().fold(0.0f32, |m, &v| m.max(v));
        while p < n {
            m = m.max(x[p].abs());
            p += 1;
        }
        m
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn quantize_levels(x: &[f32], scale: f32, num_levels: u8, out: &mut [i8]) {
        let n = x.len();
        let l = num_levels as f32;
        let vs = _mm256_set1_ps(scale);
        let vl = _mm256_set1_ps(l);
        let vnl = _mm256_set1_ps(-l);
        let sign_mask = _mm256_castsi256_ps(_mm256_set1_epi32(i32::MIN));
        let half = _mm256_set1_ps(0.5);
        let one = _mm256_set1_ps(1.0);
        let mut p = 0;
        while p + 8 <= n {
            let v = _mm256_loadu_ps(x.as_ptr().add(p));
            let t = _mm256_mul_ps(_mm256_div_ps(v, vs), vl);
            // f32::round rounds half *away* from zero; the hardware rounds
            // half to even. `t - rte` is exact for |t| in this range, so
            // comparing it against copysign(0.5, t) isolates exactly the
            // ties, which get bumped by copysign(1, t).
            let rte = _mm256_round_ps::<{ _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC }>(t);
            let tsign = _mm256_and_ps(t, sign_mask);
            let is_half =
                _mm256_cmp_ps::<_CMP_EQ_OQ>(_mm256_sub_ps(t, rte), _mm256_or_ps(half, tsign));
            let bump = _mm256_and_ps(is_half, _mm256_or_ps(one, tsign));
            let rounded = _mm256_add_ps(rte, bump);
            // Limits first: min/max return the second operand on NaN, so a
            // NaN t passes through like scalar `f32::clamp`, and the
            // conversion below turns it into level 0 like `NaN as i8`.
            let clamped = _mm256_min_ps(vl, _mm256_max_ps(vnl, rounded));
            let iv = _mm256_cvtps_epi32(clamped);
            store_low_bytes(iv, out.as_mut_ptr().add(p));
            p += 8;
        }
        while p < n {
            let t = x[p] / scale * l;
            out[p] = t.round().clamp(-l, l) as i8;
            p += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn unpack_levels(packed: &[u8], num_levels: u8, width: u32, out: &mut [i8]) {
        let n = out.len();
        let mask: u32 = (1 << width) - 1;
        let wbytes = width as usize;
        let voff = _mm256_set1_epi32(num_levels as i32);
        let mut p = 0;
        while p + 8 <= n && p / 8 * wbytes + 8 <= packed.len() {
            let word = u64::from_le_bytes(packed[p / 8 * wbytes..][..8].try_into().unwrap());
            let lev = _mm256_sub_epi32(unpack8(word, width, mask), voff);
            store_low_bytes(lev, out.as_mut_ptr().add(p));
            p += 8;
        }
        super::scalar::unpack_levels(&packed[p / 8 * wbytes..], num_levels, width, &mut out[p..]);
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dequantize_levels(levels: &[i8], scale: f32, num_levels: u8, out: &mut [f32]) {
        let n = levels.len();
        let l = num_levels as f32;
        let vl = _mm256_set1_ps(l);
        let vs = _mm256_set1_ps(scale);
        let mut p = 0;
        while p + 8 <= n {
            let b = _mm_loadl_epi64(levels.as_ptr().add(p) as *const __m128i);
            let f = _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
            let r = _mm256_mul_ps(_mm256_div_ps(f, vl), vs);
            _mm256_storeu_ps(out.as_mut_ptr().add(p), r);
            p += 8;
        }
        while p < n {
            out[p] = levels[p] as f32 / l * scale;
            p += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dequantize_packed(
        packed: &[u8],
        scale: f32,
        num_levels: u8,
        width: u32,
        out: &mut [f32],
    ) {
        let n = out.len();
        let mask: u32 = (1 << width) - 1;
        let wbytes = width as usize;
        let l = num_levels as f32;
        let vl = _mm256_set1_ps(l);
        let vs = _mm256_set1_ps(scale);
        let voff = _mm256_set1_epi32(num_levels as i32);
        let mut p = 0;
        while p + 8 <= n && p / 8 * wbytes + 8 <= packed.len() {
            let word = u64::from_le_bytes(packed[p / 8 * wbytes..][..8].try_into().unwrap());
            let lev = truncate_i8(_mm256_sub_epi32(unpack8(word, width, mask), voff));
            let f = _mm256_cvtepi32_ps(lev);
            let r = _mm256_mul_ps(_mm256_div_ps(f, vl), vs);
            _mm256_storeu_ps(out.as_mut_ptr().add(p), r);
            p += 8;
        }
        super::scalar::dequantize_packed(
            &packed[p / 8 * wbytes..],
            scale,
            num_levels,
            width,
            &mut out[p..],
        );
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
        let n = y.len();
        let va = _mm256_set1_ps(alpha);
        let mut p = 0;
        while p + 8 <= n {
            let xv = _mm256_loadu_ps(x.as_ptr().add(p));
            let yv = _mm256_loadu_ps(y.as_ptr().add(p));
            // mul + add, *not* FMA: scalar `y + alpha * x` rounds the
            // product before the sum, and tiers must agree bit-for-bit.
            let r = _mm256_add_ps(yv, _mm256_mul_ps(va, xv));
            _mm256_storeu_ps(y.as_mut_ptr().add(p), r);
            p += 8;
        }
        while p < n {
            y[p] += alpha * x[p];
            p += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpy_quantized(
        alpha: f32,
        scale: f32,
        num_levels: u8,
        width: u32,
        packed: &[u8],
        y: &mut [f32],
    ) {
        let n = y.len();
        let mask: u32 = (1 << width) - 1;
        let wbytes = width as usize;
        let l = num_levels as f32;
        let va = _mm256_set1_ps(alpha);
        let vl = _mm256_set1_ps(l);
        let vs = _mm256_set1_ps(scale);
        let voff = _mm256_set1_epi32(num_levels as i32);
        let mut p = 0;
        while p + 8 <= n && p / 8 * wbytes + 8 <= packed.len() {
            let word = u64::from_le_bytes(packed[p / 8 * wbytes..][..8].try_into().unwrap());
            let lev = truncate_i8(_mm256_sub_epi32(unpack8(word, width, mask), voff));
            let f = _mm256_cvtepi32_ps(lev);
            let xq = _mm256_mul_ps(_mm256_div_ps(f, vl), vs);
            let yv = _mm256_loadu_ps(y.as_ptr().add(p));
            let r = _mm256_add_ps(yv, _mm256_mul_ps(va, xq));
            _mm256_storeu_ps(y.as_mut_ptr().add(p), r);
            p += 8;
        }
        super::scalar::axpy_quantized(
            alpha,
            scale,
            num_levels,
            width,
            &packed[p / 8 * wbytes..],
            &mut y[p..],
        );
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn all_finite(x: &[f32]) -> bool {
        let n = x.len();
        let abs_mask = _mm256_set1_epi32(0x7fff_ffff);
        // Finite iff |bits| < 0x7f800000 as a signed compare (abs bits are
        // non-negative i32s).
        let lim = _mm256_set1_epi32(0x7f7f_ffff);
        let mut bad = _mm256_setzero_si256();
        let mut p = 0;
        while p + 8 <= n {
            let v = _mm256_loadu_si256(x.as_ptr().add(p) as *const __m256i);
            let a = _mm256_and_si256(v, abs_mask);
            bad = _mm256_or_si256(bad, _mm256_cmpgt_epi32(a, lim));
            p += 8;
        }
        if _mm256_movemask_epi8(bad) != 0 {
            return false;
        }
        x[p..].iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_len_matches_wire_math() {
        assert_eq!(packed_len(0, 5), 0);
        assert_eq!(packed_len(8, 5), 5);
        assert_eq!(packed_len(9, 5), 6);
        assert_eq!(packed_len(7, 8), 7);
    }

    #[test]
    fn scalar_round_trip_all_widths() {
        for bits in 1u8..=8 {
            let num_levels = ((1u16 << (bits - 1)) - 1).max(1) as u8;
            let width = (bits + 1).min(8) as u32;
            let levels: Vec<i8> = (0..37)
                .map(|i| (((i * 7) % (2 * num_levels as i32 + 1)) - num_levels as i32) as i8)
                .collect();
            let mut packed = vec![0u8; packed_len(levels.len(), width)];
            pack_levels_on(Kernel::Scalar, &levels, num_levels, width, &mut packed);
            let mut back = vec![0i8; levels.len()];
            unpack_levels_on(Kernel::Scalar, &packed, num_levels, width, &mut back);
            assert_eq!(back, levels, "bits={bits}");
        }
    }

    #[test]
    fn fused_equals_unpack_dequantize_axpy_scalar() {
        let num_levels = 7u8;
        let width = 4u32;
        let levels: Vec<i8> = (0..29).map(|i| (i % 15) as i8 - 7).collect();
        let mut packed = vec![0u8; packed_len(levels.len(), width)];
        pack_levels_on(Kernel::Scalar, &levels, num_levels, width, &mut packed);
        let scale = 1.375f32;
        let alpha = -0.625f32;
        let mut dense = vec![0.0f32; levels.len()];
        dequantize_levels_on(Kernel::Scalar, &levels, scale, num_levels, &mut dense);
        let mut y_ref: Vec<f32> = (0..29).map(|i| i as f32 * 0.5).collect();
        let mut y_fused = y_ref.clone();
        axpy_on(Kernel::Scalar, alpha, &dense, &mut y_ref);
        axpy_quantized_on(
            Kernel::Scalar,
            alpha,
            scale,
            num_levels,
            width,
            &packed,
            &mut y_fused,
        );
        assert_eq!(y_ref, y_fused);
    }

    #[test]
    fn max_abs_ignores_nan_like_f32_max() {
        let x = [1.0f32, f32::NAN, -3.5, 2.0];
        for k in crate::gemm::available_kernels() {
            assert_eq!(max_abs_on(k, &x), 3.5, "kernel {}", k.name());
        }
        assert_eq!(max_abs_on(Kernel::Scalar, &[]), 0.0);
    }

    #[test]
    fn all_finite_flags_every_non_finite() {
        for k in crate::gemm::available_kernels() {
            assert!(all_finite_on(k, &[1.0; 17]), "kernel {}", k.name());
            for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
                for pos in [0usize, 7, 8, 16] {
                    let mut x = [1.0f32; 17];
                    x[pos] = bad;
                    assert!(!all_finite_on(k, &x), "kernel {} pos {pos}", k.name());
                }
            }
        }
    }
}
