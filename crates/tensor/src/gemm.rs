//! Packed, cache-blocked GEMM with a register-tiled microkernel.
//!
//! This is the single matrix-multiply engine behind every `ops::matmul*`
//! variant (and, through im2col, the convolution layers). The structure is
//! the classic BLIS/GotoBLAS decomposition:
//!
//! * an `MR`×`NR` (8×4) f32 **microkernel** that keeps the output tile in a
//!   local accumulator array — small enough for registers, shaped so LLVM
//!   auto-vectorizes the inner update on the SSE2 baseline;
//! * **packing**: before use, panels of A and B are copied into contiguous
//!   strip-major scratch buffers (`MR`- resp. `NR`-wide strips, depth-major)
//!   so the microkernel streams both operands with unit stride regardless of
//!   the logical transpose;
//! * **cache blocking** with `MC`×`KC` blocks of A (sized for L2) and
//!   `KC`×`NC` panels of B (L1-resident strips), amortizing each pack across
//!   many microkernel invocations.
//!
//! Edge tiles (when `m`/`n` are not multiples of the tile sizes) are packed
//! zero-padded, computed with the full-width kernel, and only the real
//! `mr`×`nr` region is written back — the padding never contributes to a
//! stored element's dot product, so edge tiles see the *same summation
//! order* as interior ones.
//!
//! # Accumulation policy
//!
//! All matmul variants accumulate in **f32** inside the microkernel
//! (previously `matmul_transpose_b` accumulated in f64 while the other
//! kernels used f32 axpy — an inconsistency this module resolves). Rounding
//! error grows like `O(√k · ε)` for random data (`O(k · ε)` worst case),
//! which is well inside training noise for the layer sizes this workspace
//! simulates; `ops` carries a large-`k` regression test against an f64
//! reference pinning this. The *statistical progress* metric (FedCA Eq. 1)
//! still uses `linalg::dot`'s f64 accumulation — that path aggregates entire
//! flattened models, where precision is load-bearing.
//!
//! # SIMD dispatch
//!
//! The microkernel has three implementations — portable scalar (the
//! auto-vectorized SSE2 baseline), AVX2+FMA (`x86_64`), and NEON
//! (`aarch64`) — selected once per process by [`active_kernel`]: runtime
//! feature detection picks the best compiled-in tier, and the
//! `FEDCA_FORCE_KERNEL={scalar,avx2,neon}` environment variable overrides it
//! (so CI can exercise the scalar fallback on SIMD hardware). All tiers
//! share the same blocking, packing layout, and strictly-sequential K loop;
//! only the in-register accumulation schedule differs.
//!
//! # Determinism
//!
//! Results are **bit-identical regardless of thread count, per dispatch
//! tier**. The depth (`k`) loop is strictly sequential, and parallelism only
//! ever splits the output rows at `MR`-tile boundaries, so every output
//! element is produced by the exact same sequence of f32 additions no matter
//! how the tiles are distributed. Different tiers may legitimately produce
//! different low-order bits (FMA contracts the multiply-add rounding; the
//! AVX2 kernel interleaves two accumulation chains over `k`), which is why
//! golden-trace fixtures are recorded *per tier* and the golden suite pins
//! the scalar kernel explicitly. The 1-vs-4-worker golden-trace and chaos
//! suites rely on this, and `tests/gemm_parity.rs` checks it property-style
//! for every tier the host can run.

use std::cell::RefCell;
use std::sync::OnceLock;

/// Microkernel tile height (output rows per register tile).
pub const MR: usize = 8;
/// Microkernel tile width (output columns per register tile).
pub const NR: usize = 4;
/// Rows of A packed per L2-resident block (multiple of `MR`).
pub const MC: usize = 64;
/// Depth (k extent) of each packed panel.
pub const KC: usize = 256;
/// Columns of B packed per panel (multiple of `NR`).
pub const NC: usize = 512;

thread_local! {
    // Reusable pack scratch. Thread-local so the persistent executor workers
    // and the main thread each keep a warm buffer: after the first few
    // calls at a given shape, packing performs zero heap allocations.
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// A microkernel implementation tier. Every tier consumes the same packed
/// strips and produces a full `MR`×`NR` register tile; they differ only in
/// the instructions (and accumulation schedule) used to do it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kernel {
    /// Portable scalar kernel (LLVM auto-vectorizes on the SSE2 baseline).
    /// Always available; the reference tier for golden-trace fixtures.
    Scalar,
    /// AVX2 + FMA intrinsics (`x86_64` only, runtime-detected).
    Avx2,
    /// NEON intrinsics (`aarch64` only, baseline feature there).
    Neon,
}

impl Kernel {
    /// The tier's stable lowercase name (`scalar` / `avx2` / `neon`), as
    /// accepted by `FEDCA_FORCE_KERNEL`.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Avx2 => "avx2",
            Kernel::Neon => "neon",
        }
    }

    /// Parses a `FEDCA_FORCE_KERNEL` value. Case-sensitive by design: the
    /// accepted names are exactly what [`Kernel::name`] prints.
    pub fn from_name(name: &str) -> Option<Kernel> {
        match name {
            "scalar" => Some(Kernel::Scalar),
            "avx2" => Some(Kernel::Avx2),
            "neon" => Some(Kernel::Neon),
            _ => None,
        }
    }

    /// Whether this tier can run on the current host (compiled in *and*
    /// supported by the CPU).
    pub fn is_available(self) -> bool {
        match self {
            Kernel::Scalar => true,
            Kernel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                        && std::arch::is_x86_feature_detected!("fma")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Kernel::Neon => cfg!(target_arch = "aarch64"),
        }
    }
}

/// Every tier the current host can execute, best first. `Scalar` is always
/// present (and always last), so the parity suite can iterate this to test
/// each compiled SIMD tier against the scalar kernel.
pub fn available_kernels() -> Vec<Kernel> {
    [Kernel::Avx2, Kernel::Neon, Kernel::Scalar]
        .into_iter()
        .filter(|k| k.is_available())
        .collect()
}

/// Process-wide dispatch decision, made once on first use.
static ACTIVE: OnceLock<Kernel> = OnceLock::new();

fn detect_kernel() -> Kernel {
    if let Ok(name) = std::env::var("FEDCA_FORCE_KERNEL") {
        let k = Kernel::from_name(name.trim()).unwrap_or_else(|| {
            panic!("FEDCA_FORCE_KERNEL={name:?}: expected scalar, avx2, or neon")
        });
        assert!(
            k.is_available(),
            "FEDCA_FORCE_KERNEL={} but that tier is unavailable on this host",
            k.name()
        );
        return k;
    }
    available_kernels()[0]
}

/// The tier every implicit-dispatch entry point uses, latched on first call:
/// the `FEDCA_FORCE_KERNEL` override if set, else the best available tier.
pub fn active_kernel() -> Kernel {
    *ACTIVE.get_or_init(detect_kernel)
}

/// Latches the process-wide dispatch to `kernel` (golden-trace suites pin
/// `Scalar` so their fixtures stay byte-identical on SIMD hosts). Returns
/// the tier actually active: if dispatch already latched — by an earlier
/// call or a prior matmul — the existing tier wins, so callers must assert
/// on the return value rather than assume.
///
/// # Panics
/// Panics if `kernel` is unavailable on this host.
pub fn force_kernel(kernel: Kernel) -> Kernel {
    assert!(
        kernel.is_available(),
        "cannot force unavailable kernel tier {}",
        kernel.name()
    );
    *ACTIVE.get_or_init(|| kernel)
}

/// `C += op(A) · op(B)` with the thread count chosen by the shared min-par
/// heuristic ([`crate::parallel::matmul_thread_count`]).
///
/// Logical dims are `op(A): [m,k]`, `op(B): [k,n]`, `C: [m,n]`, all
/// row-major and densely packed. `trans_a` means A is *stored* `[k,m]`;
/// `trans_b` means B is *stored* `[n,k]`.
///
/// # Panics
/// Panics if a slice length does not match its logical dimensions.
#[allow(clippy::too_many_arguments)]
pub fn gemm_acc(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let threads = crate::parallel::matmul_thread_count(m * n * k);
    gemm_acc_with_threads(trans_a, trans_b, m, n, k, a, b, c, threads);
}

/// [`gemm_acc`] with an explicit thread count. Public so tests can prove
/// bit-identity across thread counts without re-configuring the process-wide
/// `FEDCA_THREADS` setting (which is latched on first use).
#[allow(clippy::too_many_arguments)]
pub fn gemm_acc_with_threads(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    gemm_acc_with_threads_on(active_kernel(), trans_a, trans_b, m, n, k, a, b, c, threads);
}

/// [`gemm_acc_with_threads`] on an explicit microkernel tier. Public so the
/// parity suite can compare every compiled tier in one process without
/// touching the latched dispatch state.
///
/// # Panics
/// Panics if a slice length does not match its logical dimensions, or if
/// `kernel` is unavailable on this host.
#[allow(clippy::too_many_arguments)]
pub fn gemm_acc_with_threads_on(
    kernel: Kernel,
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    threads: usize,
) {
    assert!(
        kernel.is_available(),
        "kernel tier {} unavailable on this host",
        kernel.name()
    );
    assert_eq!(a.len(), m * k, "gemm lhs length mismatch");
    assert_eq!(b.len(), k * n, "gemm rhs length mismatch");
    assert_eq!(c.len(), m * n, "gemm out length mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let threads = threads.clamp(1, m.div_ceil(MR));
    PACK_B.with(|cell| {
        let mut bp = cell.borrow_mut();
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for p0 in (0..k).step_by(KC) {
                let kc = KC.min(k - p0);
                let need = nc.div_ceil(NR) * kc * NR;
                if bp.len() < need {
                    bp.resize(need, 0.0);
                }
                pack_b_block(&mut bp[..need], b, trans_b, k, n, p0, kc, jc, nc);
                let b_pack: &[f32] = &bp[..need];
                if threads == 1 {
                    compute_rows(kernel, c, 0, m, a, trans_a, m, k, b_pack, jc, nc, p0, kc, n);
                } else {
                    // Split the output rows into contiguous, MR-aligned
                    // ranges. The per-element summation order is fixed by
                    // the tile schedule, so any split yields the same bits.
                    let tiles_per = m.div_ceil(MR).div_ceil(threads);
                    let rows_per = tiles_per * MR;
                    crossbeam::scope(|s| {
                        let mut rest: &mut [f32] = c;
                        let mut r0 = 0usize;
                        while !rest.is_empty() {
                            let rows = rows_per.min(m - r0);
                            let (head, tail) = rest.split_at_mut(rows * n);
                            let start = r0;
                            s.spawn(move |_| {
                                compute_rows(
                                    kernel, head, start, rows, a, trans_a, m, k, b_pack, jc, nc,
                                    p0, kc, n,
                                );
                            });
                            r0 += rows;
                            rest = tail;
                        }
                    })
                    .expect("gemm worker panicked");
                }
            }
        }
    });
}

/// Processes output rows `[r0, r0 + rows)` against one packed B panel:
/// packs A in `MC`-row blocks (into this thread's scratch) and runs the
/// microkernel grid. `c_rows` is exactly those rows of C (`rows * n` long).
#[allow(clippy::too_many_arguments)]
fn compute_rows(
    kernel: Kernel,
    c_rows: &mut [f32],
    r0: usize,
    rows: usize,
    a: &[f32],
    trans_a: bool,
    m: usize,
    k: usize,
    b_pack: &[f32],
    jc: usize,
    nc: usize,
    p0: usize,
    kc: usize,
    n: usize,
) {
    PACK_A.with(|cell| {
        let mut ap = cell.borrow_mut();
        for ic in (0..rows).step_by(MC) {
            let mc = MC.min(rows - ic);
            let need = mc.div_ceil(MR) * kc * MR;
            if ap.len() < need {
                ap.resize(need, 0.0);
            }
            pack_a_block(&mut ap[..need], a, trans_a, m, k, r0 + ic, mc, p0, kc);
            let n_strips = nc.div_ceil(NR);
            let m_strips = mc.div_ceil(MR);
            for js in 0..n_strips {
                let bs = &b_pack[js * kc * NR..(js + 1) * kc * NR];
                let nr = NR.min(nc - js * NR);
                for is in 0..m_strips {
                    let asl = &ap[is * kc * MR..(is + 1) * kc * MR];
                    let mr = MR.min(mc - is * MR);
                    let base = (ic + is * MR) * n + jc + js * NR;
                    micro_kernel_dispatch(kernel, asl, bs, &mut c_rows[base..], n, mr, nr);
                }
            }
        }
    });
}

/// Runs one register tile on the requested tier and adds its live
/// `mr`×`nr` region into C (`c` starts at the tile's top-left element,
/// row stride `ldc`). The availability check happened at the
/// `gemm_acc_with_threads_on` boundary, so calling the `target_feature`
/// kernels here is sound. Every tier adds each output element into C
/// exactly once with the same value, so routing the store through the
/// tier (the AVX2 kernel stores full tiles directly, skipping the
/// accumulator round-trip) never changes the bits.
#[inline(always)]
fn micro_kernel_dispatch(
    kernel: Kernel,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    ldc: usize,
    mr: usize,
    nr: usize,
) {
    match kernel {
        Kernel::Scalar => store_tile(&micro_kernel_scalar(a, b), c, ldc, mr, nr),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: dispatch only selects Avx2 after `is_available` confirmed
        // the avx2+fma features at runtime.
        Kernel::Avx2 => unsafe { micro_kernel_avx2(a, b, c, ldc, mr, nr) },
        #[cfg(target_arch = "aarch64")]
        // SAFETY: NEON is a baseline aarch64 feature; `is_available`
        // confirmed the target arch.
        Kernel::Neon => store_tile(&unsafe { micro_kernel_neon(a, b) }, c, ldc, mr, nr),
        // A tier whose arch is not compiled in can never be dispatched (the
        // availability assert upstream rejects it); fall back defensively.
        #[allow(unreachable_patterns)]
        _ => store_tile(&micro_kernel_scalar(a, b), c, ldc, mr, nr),
    }
}

/// The scalar register tile: `acc[i][j] += Σ_p a[p*MR+i] * b[p*NR+j]` over
/// the full packed depth. Both operands stream with unit stride; the
/// accumulator array is small enough to live in registers and the
/// fixed-trip inner loops auto-vectorize on the SSE2 baseline.
#[inline(always)]
fn micro_kernel_scalar(a: &[f32], b: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for (ap, bp) in a.chunks_exact(MR).zip(b.chunks_exact(NR)) {
        for i in 0..MR {
            let av = ap[i];
            for j in 0..NR {
                acc[i][j] += av * bp[j];
            }
        }
    }
    acc
}

/// AVX2+FMA register tile. Each output column is one `ymm` register over
/// the `MR = 8` rows; the depth loop is unrolled by two with a second set
/// of column accumulators so the 8 FMA dependency chains cover the FMA
/// latency on one core. The odd/even chains are combined once at the end —
/// a fixed, tile-local summation order, so the tier stays bit-identical
/// across thread counts (threads split output rows, never `k`).
///
/// The epilogue transposes the four column registers into rows with lane
/// shuffles and, for full tiles, adds them straight into C — small-depth
/// GEMMs (conv backward has k = 6 and k = 16 tiles) are epilogue-bound, so
/// skipping the scalar transpose + `store_tile` round-trip matters. Partial
/// tiles spill to an accumulator array and reuse `store_tile`. Either way C
/// receives the identical f32 values, added exactly once per element.
///
/// # Safety
/// Requires the `avx2` and `fma` CPU features, and `c` must hold the live
/// `mr`×`nr` tile region at row stride `ldc` (guaranteed by the blocking
/// loop in `compute_rows`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_kernel_avx2(a: &[f32], b: &[f32], c: &mut [f32], ldc: usize, mr: usize, nr: usize) {
    use std::arch::x86_64::*;
    let kc = a.len() / MR;
    debug_assert_eq!(a.len(), kc * MR);
    debug_assert_eq!(b.len(), kc * NR);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut c0 = _mm256_setzero_ps();
    let mut c1 = _mm256_setzero_ps();
    let mut c2 = _mm256_setzero_ps();
    let mut c3 = _mm256_setzero_ps();
    let mut d0 = _mm256_setzero_ps();
    let mut d1 = _mm256_setzero_ps();
    let mut d2 = _mm256_setzero_ps();
    let mut d3 = _mm256_setzero_ps();
    let mut p = 0usize;
    while p + 2 <= kc {
        let av0 = _mm256_loadu_ps(ap.add(p * MR));
        let bs0 = bp.add(p * NR);
        c0 = _mm256_fmadd_ps(av0, _mm256_broadcast_ss(&*bs0), c0);
        c1 = _mm256_fmadd_ps(av0, _mm256_broadcast_ss(&*bs0.add(1)), c1);
        c2 = _mm256_fmadd_ps(av0, _mm256_broadcast_ss(&*bs0.add(2)), c2);
        c3 = _mm256_fmadd_ps(av0, _mm256_broadcast_ss(&*bs0.add(3)), c3);
        let av1 = _mm256_loadu_ps(ap.add((p + 1) * MR));
        let bs1 = bp.add((p + 1) * NR);
        d0 = _mm256_fmadd_ps(av1, _mm256_broadcast_ss(&*bs1), d0);
        d1 = _mm256_fmadd_ps(av1, _mm256_broadcast_ss(&*bs1.add(1)), d1);
        d2 = _mm256_fmadd_ps(av1, _mm256_broadcast_ss(&*bs1.add(2)), d2);
        d3 = _mm256_fmadd_ps(av1, _mm256_broadcast_ss(&*bs1.add(3)), d3);
        p += 2;
    }
    if p < kc {
        let av = _mm256_loadu_ps(ap.add(p * MR));
        let bs = bp.add(p * NR);
        c0 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(&*bs), c0);
        c1 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(&*bs.add(1)), c1);
        c2 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(&*bs.add(2)), c2);
        c3 = _mm256_fmadd_ps(av, _mm256_broadcast_ss(&*bs.add(3)), c3);
    }
    c0 = _mm256_add_ps(c0, d0);
    c1 = _mm256_add_ps(c1, d1);
    c2 = _mm256_add_ps(c2, d2);
    c3 = _mm256_add_ps(c3, d3);
    // 8×4 transpose in-register: `pairs[i]` carries row `i` in its low
    // 128-bit lane and row `i + 4` in its high lane.
    let t0 = _mm256_unpacklo_ps(c0, c1);
    let t1 = _mm256_unpackhi_ps(c0, c1);
    let t2 = _mm256_unpacklo_ps(c2, c3);
    let t3 = _mm256_unpackhi_ps(c2, c3);
    let pairs = [
        _mm256_shuffle_ps::<0x44>(t0, t2),
        _mm256_shuffle_ps::<0xEE>(t0, t2),
        _mm256_shuffle_ps::<0x44>(t1, t3),
        _mm256_shuffle_ps::<0xEE>(t1, t3),
    ];
    if mr == MR && nr == NR {
        for (i, &p) in pairs.iter().enumerate() {
            let lo = c.as_mut_ptr().add(i * ldc);
            let hi = c.as_mut_ptr().add((i + 4) * ldc);
            _mm_storeu_ps(lo, _mm_add_ps(_mm_loadu_ps(lo), _mm256_castps256_ps128(p)));
            _mm_storeu_ps(
                hi,
                _mm_add_ps(_mm_loadu_ps(hi), _mm256_extractf128_ps::<1>(p)),
            );
        }
    } else {
        let mut acc = [[0.0f32; NR]; MR];
        for (i, &p) in pairs.iter().enumerate() {
            _mm_storeu_ps(acc[i].as_mut_ptr(), _mm256_castps256_ps128(p));
            _mm_storeu_ps(acc[i + 4].as_mut_ptr(), _mm256_extractf128_ps::<1>(p));
        }
        store_tile(&acc, c, ldc, mr, nr);
    }
}

/// NEON register tile: each output column is a low/high `float32x4_t` pair
/// over the `MR = 8` rows, updated by lane-broadcast FMAs. One accumulation
/// chain per column half — a fixed, tile-local summation order, so the tier
/// stays bit-identical across thread counts.
///
/// # Safety
/// Requires the `neon` target feature (baseline on aarch64).
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn micro_kernel_neon(a: &[f32], b: &[f32]) -> [[f32; NR]; MR] {
    use std::arch::aarch64::*;
    let kc = a.len() / MR;
    debug_assert_eq!(a.len(), kc * MR);
    debug_assert_eq!(b.len(), kc * NR);
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut lo0 = vdupq_n_f32(0.0);
    let mut lo1 = vdupq_n_f32(0.0);
    let mut lo2 = vdupq_n_f32(0.0);
    let mut lo3 = vdupq_n_f32(0.0);
    let mut hi0 = vdupq_n_f32(0.0);
    let mut hi1 = vdupq_n_f32(0.0);
    let mut hi2 = vdupq_n_f32(0.0);
    let mut hi3 = vdupq_n_f32(0.0);
    for p in 0..kc {
        let al = vld1q_f32(ap.add(p * MR));
        let ah = vld1q_f32(ap.add(p * MR + 4));
        let bv = vld1q_f32(bp.add(p * NR));
        lo0 = vfmaq_laneq_f32::<0>(lo0, al, bv);
        hi0 = vfmaq_laneq_f32::<0>(hi0, ah, bv);
        lo1 = vfmaq_laneq_f32::<1>(lo1, al, bv);
        hi1 = vfmaq_laneq_f32::<1>(hi1, ah, bv);
        lo2 = vfmaq_laneq_f32::<2>(lo2, al, bv);
        hi2 = vfmaq_laneq_f32::<2>(hi2, ah, bv);
        lo3 = vfmaq_laneq_f32::<3>(lo3, al, bv);
        hi3 = vfmaq_laneq_f32::<3>(hi3, ah, bv);
    }
    let mut cols = [[0.0f32; MR]; NR];
    vst1q_f32(cols[0].as_mut_ptr(), lo0);
    vst1q_f32(cols[0].as_mut_ptr().add(4), hi0);
    vst1q_f32(cols[1].as_mut_ptr(), lo1);
    vst1q_f32(cols[1].as_mut_ptr().add(4), hi1);
    vst1q_f32(cols[2].as_mut_ptr(), lo2);
    vst1q_f32(cols[2].as_mut_ptr().add(4), hi2);
    vst1q_f32(cols[3].as_mut_ptr(), lo3);
    vst1q_f32(cols[3].as_mut_ptr().add(4), hi3);
    let mut acc = [[0.0f32; NR]; MR];
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            acc[i][j] = v;
        }
    }
    acc
}

/// Adds the live `mr`×`nr` region of a register tile into C. `c` starts at
/// the tile's top-left element; `ldc` is C's row stride.
#[inline(always)]
fn store_tile(acc: &[[f32; NR]; MR], c: &mut [f32], ldc: usize, mr: usize, nr: usize) {
    for (i, acc_row) in acc.iter().enumerate().take(mr) {
        let row = &mut c[i * ldc..i * ldc + nr];
        for (out, &v) in row.iter_mut().zip(acc_row.iter()) {
            *out += v;
        }
    }
}

/// Packs rows `[i0, i0+mc)` × depth `[p0, p0+kc)` of logical-`[m,k]` A into
/// `MR`-row strips, depth-major within each strip, zero-padding the last
/// strip's missing rows.
#[allow(clippy::too_many_arguments)]
fn pack_a_block(
    dst: &mut [f32],
    a: &[f32],
    trans: bool,
    m: usize,
    k: usize,
    i0: usize,
    mc: usize,
    p0: usize,
    kc: usize,
) {
    let strips = mc.div_ceil(MR);
    for s in 0..strips {
        let strip = &mut dst[s * kc * MR..(s + 1) * kc * MR];
        let rows = MR.min(mc - s * MR);
        if trans {
            // A stored [k, m]: element (i, p) = a[p*m + i]; rows are
            // adjacent in memory, so copy them per depth step.
            for p in 0..kc {
                let src = &a[(p0 + p) * m + i0 + s * MR..];
                let d = &mut strip[p * MR..(p + 1) * MR];
                d[..rows].copy_from_slice(&src[..rows]);
                d[rows..].fill(0.0);
            }
        } else {
            // A stored [m, k]: read each row contiguously, scatter into the
            // strip's interleaved layout.
            for r in 0..rows {
                let src = &a[(i0 + s * MR + r) * k + p0..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    strip[p * MR + r] = v;
                }
            }
            for r in rows..MR {
                for p in 0..kc {
                    strip[p * MR + r] = 0.0;
                }
            }
        }
    }
}

/// Packs depth `[p0, p0+kc)` × columns `[j0, j0+nc)` of logical-`[k,n]` B
/// into `NR`-column strips, depth-major within each strip, zero-padding the
/// last strip's missing columns.
#[allow(clippy::too_many_arguments)]
fn pack_b_block(
    dst: &mut [f32],
    b: &[f32],
    trans: bool,
    k: usize,
    n: usize,
    p0: usize,
    kc: usize,
    j0: usize,
    nc: usize,
) {
    let strips = nc.div_ceil(NR);
    for s in 0..strips {
        let strip = &mut dst[s * kc * NR..(s + 1) * kc * NR];
        let cols = NR.min(nc - s * NR);
        if trans {
            // B stored [n, k]: element (p, j) = b[j*k + p]; read each
            // column's depth run contiguously.
            for c in 0..cols {
                let src = &b[(j0 + s * NR + c) * k + p0..][..kc];
                for (p, &v) in src.iter().enumerate() {
                    strip[p * NR + c] = v;
                }
            }
            for c in cols..NR {
                for p in 0..kc {
                    strip[p * NR + c] = 0.0;
                }
            }
        } else {
            // B stored [k, n]: columns are adjacent per depth step.
            for p in 0..kc {
                let src = &b[(p0 + p) * n + j0 + s * NR..];
                let d = &mut strip[p * NR..(p + 1) * NR];
                d[..cols].copy_from_slice(&src[..cols]);
                d[cols..].fill(0.0);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(
        trans_a: bool,
        trans_b: bool,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
    ) -> Vec<f32> {
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    let av = if trans_a { a[p * m + i] } else { a[i * k + p] };
                    let bv = if trans_b { b[j * k + p] } else { b[p * n + j] };
                    c[i * n + j] += av as f64 * bv as f64;
                }
            }
        }
        c.into_iter().map(|x| x as f32).collect()
    }

    fn fill(len: usize, seed: u32) -> Vec<f32> {
        // Small deterministic values; exact in f32 products for short k.
        (0..len)
            .map(|i| ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 17) as f32 - 8.0)
            .collect()
    }

    #[test]
    fn all_transpose_combos_match_naive() {
        for &(m, n, k) in &[(1, 1, 1), (3, 5, 7), (8, 4, 16), (13, 9, 21), (70, 41, 33)] {
            for &ta in &[false, true] {
                for &tb in &[false, true] {
                    let a = fill(m * k, 1);
                    let b = fill(k * n, 2);
                    let mut c = vec![0.0f32; m * n];
                    gemm_acc(ta, tb, m, n, k, &a, &b, &mut c);
                    let want = naive(ta, tb, m, n, k, &a, &b);
                    for (i, (&x, &y)) in c.iter().zip(want.iter()).enumerate() {
                        let tol = 1e-4 * (1.0 + x.abs().max(y.abs()));
                        assert!(
                            (x - y).abs() <= tol,
                            "({m},{n},{k}) ta={ta} tb={tb} [{i}]: {x} vs {y}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn accumulates_into_existing_output() {
        let (m, n, k) = (5, 6, 7);
        let a = fill(m * k, 3);
        let b = fill(k * n, 4);
        let mut c = vec![1.0f32; m * n];
        gemm_acc(false, false, m, n, k, &a, &b, &mut c);
        let want = naive(false, false, m, n, k, &a, &b);
        for (&x, &y) in c.iter().zip(want.iter()) {
            assert!((x - (y + 1.0)).abs() <= 1e-3, "{x} vs {}", y + 1.0);
        }
    }

    #[test]
    fn thread_counts_produce_identical_bits() {
        // Spans multiple MR tiles and KC blocks so the parallel split is real.
        let (m, n, k) = (67, 35, 300);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 31 % 997) as f32 - 498.0) * 1e-3)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| ((i * 17 % 991) as f32 - 495.0) * 1e-3)
            .collect();
        let mut c1 = vec![0.0f32; m * n];
        gemm_acc_with_threads(false, false, m, n, k, &a, &b, &mut c1, 1);
        for threads in [2, 3, 4, 7] {
            let mut ct = vec![0.0f32; m * n];
            gemm_acc_with_threads(false, false, m, n, k, &a, &b, &mut ct, threads);
            assert_eq!(c1, ct, "threads={threads} changed the bits");
        }
    }

    #[test]
    fn zero_dims_are_noops() {
        let mut c = vec![7.0f32; 6];
        gemm_acc(false, false, 2, 3, 0, &[], &[], &mut c);
        assert_eq!(c, vec![7.0; 6]);
        gemm_acc(false, false, 0, 3, 2, &[], &[0.0; 6], &mut []);
    }

    #[test]
    #[should_panic(expected = "lhs length mismatch")]
    fn rejects_bad_lengths() {
        let mut c = vec![0.0f32; 4];
        gemm_acc(false, false, 2, 2, 2, &[0.0; 3], &[0.0; 4], &mut c);
    }

    #[test]
    fn kernel_names_round_trip_and_scalar_is_always_available() {
        for k in [Kernel::Scalar, Kernel::Avx2, Kernel::Neon] {
            assert_eq!(Kernel::from_name(k.name()), Some(k));
        }
        assert_eq!(Kernel::from_name("sse9"), None);
        let avail = available_kernels();
        assert_eq!(*avail.last().unwrap(), Kernel::Scalar);
        assert!(avail.iter().all(|k| k.is_available()));
    }

    #[test]
    fn every_available_tier_matches_the_scalar_kernel_closely() {
        let (m, n, k) = (21, 14, 130);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6);
        let mut reference = vec![0.0f32; m * n];
        gemm_acc_with_threads_on(
            Kernel::Scalar,
            false,
            false,
            m,
            n,
            k,
            &a,
            &b,
            &mut reference,
            1,
        );
        for tier in available_kernels() {
            let mut c = vec![0.0f32; m * n];
            gemm_acc_with_threads_on(tier, false, false, m, n, k, &a, &b, &mut c, 1);
            for (i, (&x, &y)) in c.iter().zip(reference.iter()).enumerate() {
                let tol = 1e-3 * (1.0 + y.abs());
                assert!(
                    (x - y).abs() <= tol,
                    "{}[{i}]: {x} vs scalar {y}",
                    tier.name()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "unavailable")]
    fn explicit_tier_entry_rejects_unavailable_tiers() {
        // One of Avx2/Neon is always unavailable (no host has both arches).
        let missing = if Kernel::Avx2.is_available() {
            Kernel::Neon
        } else {
            Kernel::Avx2
        };
        let mut c = vec![0.0f32; 1];
        gemm_acc_with_threads_on(missing, false, false, 1, 1, 1, &[1.0], &[1.0], &mut c, 1);
    }
}
