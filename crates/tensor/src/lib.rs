//! # fedca-tensor
//!
//! Dense `f32` tensor substrate for the FedCA reproduction.
//!
//! The FedCA paper ([Lyu et al., ICPP '24]) implements its mechanism atop
//! PyTorch; this crate is the from-scratch replacement for the slice of
//! PyTorch the paper actually uses: dense row-major `f32` tensors, the
//! linear-algebra kernels needed for forward/backward passes (blocked and
//! optionally multi-threaded matrix multiplication, elementwise maps,
//! reductions), and the vector geometry (dot products, norms, cosine
//! similarity) at the heart of the paper's *statistical progress* metric
//! (Eq. 1).
//!
//! Design notes, following the HPC-Rust guidance this repo was built under:
//!
//! * Hot kernels take slices, not `Vec`s, and write into caller-provided
//!   buffers where it matters (`matmul_into`, `Tensor::add_assign`) so inner
//!   loops allocate nothing.
//! * Parallelism is explicit and scoped: [`parallel::par_chunks_mut`] splits
//!   work across threads with `crossbeam::scope`, guaranteeing data-race
//!   freedom without a global runtime. Kernels fall back to the sequential
//!   path below a size threshold because thread spawn latency dominates for
//!   the small layers FL clients train.
//! * Everything is deterministic given a seed: random init goes through
//!   caller-supplied [`rand::Rng`] state, never a thread-local generator.
//!
//! [Lyu et al., ICPP '24]: https://doi.org/10.1145/3673038.3673049

pub mod dataplane;
pub mod gemm;
pub mod linalg;
pub mod ops;
pub mod parallel;
pub mod shape;
pub mod simd;
pub mod tensor;

pub use linalg::{axpy, cosine_similarity, dot, l2_norm, magnitude_similarity};
pub use ops::{matmul, matmul_into, matmul_transpose_a, matmul_transpose_b};
pub use shape::Shape;
pub use tensor::Tensor;
