//! Flat-vector linear algebra: dot products, norms, AXPY, and the two
//! similarity measures combined by FedCA's statistical-progress metric
//! (paper Eq. 1).

/// Dot product of two equal-length slices.
///
/// Accumulates in `f64`: progress curves compare gradient accumulations with
/// hundreds of thousands of terms, where `f32` accumulation error visibly
/// distorts cosine similarities near 1.0 — exactly the regime the eager
/// transmission threshold `T_e = 0.95` lives in.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    // Four independent accumulators let the compiler vectorize despite the
    // non-associativity of floating-point addition.
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] as f64 * b[j] as f64;
        acc[1] += a[j + 1] as f64 * b[j + 1] as f64;
        acc[2] += a[j + 2] as f64 * b[j + 2] as f64;
        acc[3] += a[j + 3] as f64 * b[j + 3] as f64;
    }
    for j in chunks * 4..a.len() {
        acc[0] += a[j] as f64 * b[j] as f64;
    }
    acc[0] + acc[1] + acc[2] + acc[3]
}

/// L2 norm of a slice (f64 accumulation, f32 result).
pub fn l2_norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt() as f32
}

/// `y += alpha * x`.
///
/// Dispatches to the tiered data-plane kernel
/// ([`crate::dataplane::axpy`]); every tier is bit-identical to the scalar
/// loop (mul-then-add, no FMA), so routing through dispatch cannot perturb
/// golden trajectories.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    crate::dataplane::axpy(alpha, x, y);
}

/// Cosine similarity between two vectors.
///
/// Returns `0.0` when either vector is (numerically) zero — the convention
/// FedCA needs: a layer that has not moved yet carries no directional
/// information, and treating it as orthogonal keeps its statistical progress
/// at zero rather than `NaN`.
pub fn cosine_similarity(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine_similarity: length mismatch");
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na <= f64::EPSILON || nb <= f64::EPSILON {
        return 0.0;
    }
    let c = dot(a, b) / (na * nb);
    // Clamp out the |cos| <= 1 violations produced by rounding.
    c.clamp(-1.0, 1.0) as f32
}

/// Magnitude similarity `min(‖a‖,‖b‖)/max(‖a‖,‖b‖)` — the second factor of
/// FedCA's statistical-progress metric (Eq. 1).
///
/// Returns `0.0` if exactly one vector is zero, `1.0` if both are.
pub fn magnitude_similarity(a: &[f32], b: &[f32]) -> f32 {
    let na = dot(a, a).sqrt();
    let nb = dot(b, b).sqrt();
    if na <= f64::EPSILON && nb <= f64::EPSILON {
        return 1.0;
    }
    let (lo, hi) = if na < nb { (na, nb) } else { (nb, na) };
    if hi <= f64::EPSILON {
        return 1.0;
    }
    (lo / hi) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_naive() {
        let a: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let b: Vec<f32> = (0..13).map(|i| (13 - i) as f32).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| *x as f64 * *y as f64).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-9);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn l2_norm_basics() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn axpy_accumulates() {
        let x = [1.0f32, 2.0, 3.0];
        let mut y = [10.0f32, 10.0, 10.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 11.0, 11.5]);
    }

    #[test]
    fn cosine_extremes() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 2.0];
        assert_eq!(cosine_similarity(&a, &a), 1.0);
        assert_eq!(cosine_similarity(&a, &b), 0.0);
        let neg = [-1.0f32, 0.0];
        assert_eq!(cosine_similarity(&a, &neg), -1.0);
    }

    #[test]
    fn cosine_zero_vector_is_zero_not_nan() {
        let z = [0.0f32; 4];
        let a = [1.0f32, 2.0, 3.0, 4.0];
        assert_eq!(cosine_similarity(&z, &a), 0.0);
        assert_eq!(cosine_similarity(&z, &z), 0.0);
    }

    #[test]
    fn cosine_scale_invariance() {
        let a = [0.3f32, -1.2, 2.2, 0.7];
        let b: Vec<f32> = a.iter().map(|x| x * 37.5).collect();
        assert!((cosine_similarity(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn magnitude_similarity_basics() {
        let a = [3.0f32, 4.0]; // norm 5
        let b = [6.0f32, 8.0]; // norm 10
        assert!((magnitude_similarity(&a, &b) - 0.5).abs() < 1e-6);
        assert!((magnitude_similarity(&a, &a) - 1.0).abs() < 1e-6);
        assert_eq!(magnitude_similarity(&a, &[0.0, 0.0]), 0.0);
        assert_eq!(magnitude_similarity(&[0.0, 0.0], &[0.0, 0.0]), 1.0);
    }

    #[test]
    fn magnitude_similarity_is_symmetric() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [9.0f32, -1.0, 0.5];
        assert_eq!(magnitude_similarity(&a, &b), magnitude_similarity(&b, &a));
    }
}
