//! Matrix multiplication kernels.
//!
//! The variants cover everything the NN layers need without ever
//! materializing a transpose:
//!
//! * `matmul(a, b)`              — `C = A · B`       (forward pass)
//! * `matmul_transpose_b(a, b)`  — `C = A · Bᵀ`      (Linear/LSTM forward)
//! * `matmul_transpose_a(a, b)`  — `C = Aᵀ · B`      (weight gradients)
//!
//! plus `_into` (overwrite) and `_acc` (accumulate) forms that write into
//! caller-provided tensors so hot loops allocate nothing.
//!
//! Every variant routes through the packed, register-blocked engine in
//! [`crate::gemm`] — one kernel, one blocking scheme, one parallel schedule.
//! Parallelism uses the shared [`crate::parallel::matmul_thread_count`]
//! heuristic (including the weight-gradient path, which historically stayed
//! single-threaded), and results are bit-identical across thread counts.
//!
//! # Accumulation policy
//!
//! All variants accumulate in **f32** inside the microkernel's register
//! tile. Before the unification, `matmul_transpose_b` accumulated in f64
//! while the other kernels used f32 axpy — gradients and activations saw
//! different rounding. The single policy is f32: error grows `O(√k · ε)`
//! on real data (see `large_k_accumulation_stays_close_to_f64` below),
//! which is negligible against SGD noise at these layer sizes. The FedCA
//! progress metric (Eq. 1) keeps f64 accumulation via `linalg::dot`, where
//! whole-model reductions make precision load-bearing.

use crate::gemm::gemm_acc;
use crate::tensor::Tensor;

fn check_2d(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "{what} must be 2-D, got {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1))
}

/// `C += A · B` for row-major 2-D tensors, writing into an existing output
/// buffer (which must be zeroed or otherwise pre-filled by the caller —
/// values are *accumulated*).
///
/// # Panics
/// Panics on rank or dimension mismatch.
pub fn matmul_acc_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k) = check_2d(a, "matmul lhs");
    let (k2, n) = check_2d(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
    let (m2, n2) = check_2d(out, "matmul out");
    assert_eq!((m, n), (m2, n2), "matmul out shape mismatch");
    gemm_acc(
        false,
        false,
        m,
        n,
        k,
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
    );
}

/// `C = A · B`, allocating the output.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _) = check_2d(a, "matmul lhs");
    let (_, n) = check_2d(b, "matmul rhs");
    let mut out = Tensor::zeros([m, n]);
    matmul_acc_into(a, b, &mut out);
    out
}

/// `C = A · B` into a caller-provided tensor (overwritten).
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    out.fill_zero();
    matmul_acc_into(a, b, out);
}

/// `C += A · Bᵀ` where `A: [m,k]`, `B: [n,k]`, accumulating into `C: [m,n]`.
pub fn matmul_transpose_b_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k) = check_2d(a, "matmul_transpose_b lhs");
    let (n, k2) = check_2d(b, "matmul_transpose_b rhs");
    assert_eq!(k, k2, "matmul_transpose_b inner dims differ: {k} vs {k2}");
    let (m2, n2) = check_2d(out, "matmul_transpose_b out");
    assert_eq!((m, n), (m2, n2), "matmul_transpose_b out shape mismatch");
    gemm_acc(
        false,
        true,
        m,
        n,
        k,
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
    );
}

/// `C = A · Bᵀ` into a caller-provided tensor (overwritten).
pub fn matmul_transpose_b_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    out.fill_zero();
    matmul_transpose_b_acc(a, b, out);
}

/// `C = A · Bᵀ` where `A: [m,k]`, `B: [n,k]`, producing `C: [m,n]`.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _) = check_2d(a, "matmul_transpose_b lhs");
    let (n, _) = check_2d(b, "matmul_transpose_b rhs");
    let mut out = Tensor::zeros([m, n]);
    matmul_transpose_b_acc(a, b, &mut out);
    out
}

/// `C += Aᵀ · B` where `A: [k,m]`, `B: [k,n]`, producing/accumulating into
/// `C: [m,n]`. Accumulation (rather than overwrite) matches its use for
/// gradient accumulation across a batch.
pub fn matmul_transpose_a_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (k, m) = check_2d(a, "matmul_transpose_a lhs");
    let (k2, n) = check_2d(b, "matmul_transpose_a rhs");
    assert_eq!(k, k2, "matmul_transpose_a inner dims differ: {k} vs {k2}");
    let (m2, n2) = check_2d(out, "matmul_transpose_a out");
    assert_eq!((m, n), (m2, n2), "matmul_transpose_a out shape mismatch");
    gemm_acc(
        true,
        false,
        m,
        n,
        k,
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
    );
}

/// `C = Aᵀ · B` into a caller-provided tensor (overwritten).
pub fn matmul_transpose_a_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    out.fill_zero();
    matmul_transpose_a_acc(a, b, out);
}

/// `C = Aᵀ · B`, allocating the output.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Tensor {
    let (_, m) = check_2d(a, "matmul_transpose_a lhs");
    let (_, n) = check_2d(b, "matmul_transpose_a rhs");
    let mut out = Tensor::zeros([m, n]);
    matmul_transpose_a_acc(a, b, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for kk in 0..k {
                    s += a.at(&[i, kk]) as f64 * b.at(&[kk, j]) as f64;
                }
                *out.at_mut(&[i, j]) = s as f32;
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (7, 5, 9), (16, 16, 16), (33, 17, 29)] {
            let a = Tensor::randn([m, k], 1.0, &mut rng);
            let b = Tensor::randn([k, n], 1.0, &mut rng);
            assert_close(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-5);
        }
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::randn([5, 5], 1.0, &mut rng);
        let mut eye = Tensor::zeros([5, 5]);
        for i in 0..5 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert_close(&matmul(&a, &eye), &a, 1e-6);
        assert_close(&matmul(&eye, &a), &a, 1e-6);
    }

    #[test]
    fn matmul_zero_dims() {
        let a = Tensor::zeros([0, 3]);
        let b = Tensor::zeros([3, 2]);
        assert_eq!(matmul(&a, &b).dims(), &[0, 2]);
        let a = Tensor::zeros([2, 0]);
        let b = Tensor::zeros([0, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.sum(), 0.0);
    }

    #[test]
    fn transpose_b_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn([4, 6], 1.0, &mut rng);
        let b = Tensor::randn([3, 6], 1.0, &mut rng);
        // Build Bᵀ explicitly and compare.
        let mut bt = Tensor::zeros([6, 3]);
        for i in 0..3 {
            for j in 0..6 {
                *bt.at_mut(&[j, i]) = b.at(&[i, j]);
            }
        }
        assert_close(&matmul_transpose_b(&a, &b), &matmul(&a, &bt), 1e-5);
    }

    #[test]
    fn transpose_a_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Tensor::randn([6, 4], 1.0, &mut rng);
        let b = Tensor::randn([6, 3], 1.0, &mut rng);
        let mut at = Tensor::zeros([4, 6]);
        for i in 0..6 {
            for j in 0..4 {
                *at.at_mut(&[j, i]) = a.at(&[i, j]);
            }
        }
        assert_close(&matmul_transpose_a(&a, &b), &matmul(&at, &b), 1e-5);
    }

    #[test]
    fn transpose_a_acc_accumulates() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn([3, 2], 1.0, &mut rng);
        let b = Tensor::randn([3, 5], 1.0, &mut rng);
        let once = matmul_transpose_a(&a, &b);
        let mut twice = matmul_transpose_a(&a, &b);
        matmul_transpose_a_acc(&a, &b, &mut twice);
        let mut expected = once.clone();
        expected.add_assign(&once);
        assert_close(&twice, &expected, 1e-5);
    }

    #[test]
    fn transpose_b_acc_and_into_variants_agree() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Tensor::randn([4, 7], 1.0, &mut rng);
        let b = Tensor::randn([5, 7], 1.0, &mut rng);
        let base = matmul_transpose_b(&a, &b);

        let mut into = Tensor::full([4, 5], 3.0); // stale contents overwritten
        matmul_transpose_b_into(&a, &b, &mut into);
        assert_eq!(into, base);

        let mut acc = base.clone();
        matmul_transpose_b_acc(&a, &b, &mut acc);
        let mut expected = base.clone();
        expected.add_assign(&base);
        assert_close(&acc, &expected, 1e-5);

        let a_tall = Tensor::randn([7, 4], 1.0, &mut rng); // [k=7, m=4]
        let b2 = Tensor::randn([7, 5], 1.0, &mut rng);
        let ta = matmul_transpose_a(&a_tall, &b2);
        let mut ta_into = Tensor::full([4, 5], -2.0);
        matmul_transpose_a_into(&a_tall, &b2, &mut ta_into);
        assert_eq!(ta_into, ta);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_dim_mismatch() {
        let _ = matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }

    #[test]
    fn large_matmul_parallel_path_agrees() {
        // Big enough to cross PAR_FLOPS_THRESHOLD with >1 thread configured.
        let mut rng = StdRng::seed_from_u64(8);
        let a = Tensor::randn([128, 96], 1.0, &mut rng);
        let b = Tensor::randn([96, 112], 1.0, &mut rng);
        assert_close(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-4);
    }

    #[test]
    fn large_k_accumulation_stays_close_to_f64() {
        // Pins the documented f32 accumulation policy: at k = 8192 the
        // blocked f32 sums must stay within O(√k·ε) of an f64 reference,
        // for every transpose variant.
        let k = 8192;
        let mut rng = StdRng::seed_from_u64(9);
        let a = Tensor::randn([2, k], 1.0, &mut rng);
        let b = Tensor::randn([k, 3], 1.0, &mut rng);
        assert_close(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-4);

        // A·Bᵀ with B: [3, k] equals A·(explicit Bᵀ).
        let bt_rows = Tensor::randn([3, k], 1.0, &mut rng);
        let mut bt = Tensor::zeros([k, 3]);
        for i in 0..3 {
            for j in 0..k {
                *bt.at_mut(&[j, i]) = bt_rows.at(&[i, j]);
            }
        }
        assert_close(
            &matmul_transpose_b(&a, &bt_rows),
            &naive_matmul(&a, &bt),
            1e-4,
        );

        // Aᵀ·B with A: [k, 2].
        let a_tall = Tensor::randn([k, 2], 1.0, &mut rng);
        let mut at = Tensor::zeros([2, k]);
        for i in 0..k {
            for j in 0..2 {
                *at.at_mut(&[j, i]) = a_tall.at(&[i, j]);
            }
        }
        assert_close(
            &matmul_transpose_a(&a_tall, &b),
            &naive_matmul(&at, &b),
            1e-4,
        );
    }
}
