//! Matrix multiplication kernels.
//!
//! Three variants cover everything the NN layers need without ever
//! materializing a transpose:
//!
//! * `matmul(a, b)`              — `C = A · B`       (forward pass)
//! * `matmul_transpose_b(a, b)`  — `C = A · Bᵀ`      (input gradients)
//! * `matmul_transpose_a(a, b)`  — `C = Aᵀ · B`      (weight gradients)
//!
//! The plain kernel is an i-k-j loop (unit-stride inner loop over the output
//! row, the standard cache-friendly ordering for row-major data) with the
//! output rows optionally distributed across scoped threads.

use crate::parallel::par_chunks_mut;
use crate::tensor::Tensor;

/// Below this many multiply-adds the kernels stay single-threaded: thread
/// spawn latency exceeds the compute for small FL-scale layers.
const PAR_FLOPS_THRESHOLD: usize = 1 << 20;

fn check_2d(t: &Tensor, what: &str) -> (usize, usize) {
    assert_eq!(t.shape().rank(), 2, "{what} must be 2-D, got {}", t.shape());
    (t.shape().dim(0), t.shape().dim(1))
}

/// `C = A · B` for row-major 2-D tensors, writing into an existing output
/// buffer (which must be zeroed or otherwise pre-filled by the caller —
/// values are *accumulated*).
///
/// # Panics
/// Panics on rank or dimension mismatch.
pub fn matmul_acc_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k) = check_2d(a, "matmul lhs");
    let (k2, n) = check_2d(b, "matmul rhs");
    assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
    let (m2, n2) = check_2d(out, "matmul out");
    assert_eq!((m, n), (m2, n2), "matmul out shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let min_par = if m * n * k >= PAR_FLOPS_THRESHOLD {
        0
    } else {
        usize::MAX
    };
    par_chunks_mut(out.as_mut_slice(), n, min_par, |start, c_rows| {
        let row0 = start / n;
        for (local_i, c_row) in c_rows.chunks_mut(n).enumerate() {
            let i = row0 + local_i;
            let a_row = &a_data[i * k..(i + 1) * k];
            for (kk, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue; // ReLU backward produces many exact zeros
                }
                let b_row = &b_data[kk * n..(kk + 1) * n];
                crate::linalg::axpy(a_ik, b_row, c_row);
            }
        }
    });
}

/// `C = A · B`, allocating the output.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, _) = check_2d(a, "matmul lhs");
    let (_, n) = check_2d(b, "matmul rhs");
    let mut out = Tensor::zeros([m, n]);
    matmul_acc_into(a, b, &mut out);
    out
}

/// `C = A · B` into a caller-provided, pre-zeroed tensor. Alias of
/// [`matmul_acc_into`] kept for call-site clarity in the layer code.
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    out.fill_zero();
    matmul_acc_into(a, b, out);
}

/// `C = A · Bᵀ` where `A: [m,k]`, `B: [n,k]`, producing `C: [m,n]`.
///
/// Both operands are read with unit stride (each output element is a dot of
/// two contiguous rows), so no transpose copy is needed.
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = check_2d(a, "matmul_transpose_b lhs");
    let (n, k2) = check_2d(b, "matmul_transpose_b rhs");
    assert_eq!(k, k2, "matmul_transpose_b inner dims differ: {k} vs {k2}");
    let mut out = Tensor::zeros([m, n]);
    if m == 0 || n == 0 || k == 0 {
        return out;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    let min_par = if m * n * k >= PAR_FLOPS_THRESHOLD {
        0
    } else {
        usize::MAX
    };
    par_chunks_mut(out.as_mut_slice(), n, min_par, |start, c_rows| {
        let row0 = start / n;
        for (local_i, c_row) in c_rows.chunks_mut(n).enumerate() {
            let i = row0 + local_i;
            let a_row = &a_data[i * k..(i + 1) * k];
            for (j, c_ij) in c_row.iter_mut().enumerate() {
                let b_row = &b_data[j * k..(j + 1) * k];
                *c_ij = crate::linalg::dot(a_row, b_row) as f32;
            }
        }
    });
    out
}

/// `C += Aᵀ · B` where `A: [k,m]`, `B: [k,n]`, producing/accumulating into
/// `C: [m,n]`. Accumulation (rather than overwrite) matches its use for
/// gradient accumulation across a batch.
pub fn matmul_transpose_a_acc(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (k, m) = check_2d(a, "matmul_transpose_a lhs");
    let (k2, n) = check_2d(b, "matmul_transpose_a rhs");
    assert_eq!(k, k2, "matmul_transpose_a inner dims differ: {k} vs {k2}");
    let (m2, n2) = check_2d(out, "matmul_transpose_a out");
    assert_eq!((m, n), (m2, n2), "matmul_transpose_a out shape mismatch");
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let a_data = a.as_slice();
    let b_data = b.as_slice();
    // Loop order kk-i-j: for each sample kk, rank-1 update C += a_kkᵀ b_kk.
    // The inner j loop is unit-stride over both B's row and C's row.
    let c = out.as_mut_slice();
    for kk in 0..k {
        let a_row = &a_data[kk * m..(kk + 1) * m];
        let b_row = &b_data[kk * n..(kk + 1) * n];
        for (i, &a_ki) in a_row.iter().enumerate() {
            if a_ki == 0.0 {
                continue;
            }
            crate::linalg::axpy(a_ki, b_row, &mut c[i * n..(i + 1) * n]);
        }
    }
}

/// `C = Aᵀ · B`, allocating the output.
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Tensor {
    let (_, m) = check_2d(a, "matmul_transpose_a lhs");
    let (_, n) = check_2d(b, "matmul_transpose_a rhs");
    let mut out = Tensor::zeros([m, n]);
    matmul_transpose_a_acc(a, b, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for kk in 0..k {
                    s += a.at(&[i, kk]) as f64 * b.at(&[kk, j]) as f64;
                }
                *out.at_mut(&[i, j]) = s as f32;
            }
        }
        out
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn matmul_matches_naive() {
        let mut rng = StdRng::seed_from_u64(3);
        for &(m, k, n) in &[(1, 1, 1), (2, 3, 4), (7, 5, 9), (16, 16, 16), (33, 17, 29)] {
            let a = Tensor::randn([m, k], 1.0, &mut rng);
            let b = Tensor::randn([k, n], 1.0, &mut rng);
            assert_close(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-5);
        }
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        let a = Tensor::randn([5, 5], 1.0, &mut rng);
        let mut eye = Tensor::zeros([5, 5]);
        for i in 0..5 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert_close(&matmul(&a, &eye), &a, 1e-6);
        assert_close(&matmul(&eye, &a), &a, 1e-6);
    }

    #[test]
    fn matmul_zero_dims() {
        let a = Tensor::zeros([0, 3]);
        let b = Tensor::zeros([3, 2]);
        assert_eq!(matmul(&a, &b).dims(), &[0, 2]);
        let a = Tensor::zeros([2, 0]);
        let b = Tensor::zeros([0, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.dims(), &[2, 2]);
        assert_eq!(c.sum(), 0.0);
    }

    #[test]
    fn transpose_b_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn([4, 6], 1.0, &mut rng);
        let b = Tensor::randn([3, 6], 1.0, &mut rng);
        // Build Bᵀ explicitly and compare.
        let mut bt = Tensor::zeros([6, 3]);
        for i in 0..3 {
            for j in 0..6 {
                *bt.at_mut(&[j, i]) = b.at(&[i, j]);
            }
        }
        assert_close(&matmul_transpose_b(&a, &b), &matmul(&a, &bt), 1e-5);
    }

    #[test]
    fn transpose_a_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Tensor::randn([6, 4], 1.0, &mut rng);
        let b = Tensor::randn([6, 3], 1.0, &mut rng);
        let mut at = Tensor::zeros([4, 6]);
        for i in 0..6 {
            for j in 0..4 {
                *at.at_mut(&[j, i]) = a.at(&[i, j]);
            }
        }
        assert_close(&matmul_transpose_a(&a, &b), &matmul(&at, &b), 1e-5);
    }

    #[test]
    fn transpose_a_acc_accumulates() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Tensor::randn([3, 2], 1.0, &mut rng);
        let b = Tensor::randn([3, 5], 1.0, &mut rng);
        let once = matmul_transpose_a(&a, &b);
        let mut twice = matmul_transpose_a(&a, &b);
        matmul_transpose_a_acc(&a, &b, &mut twice);
        let mut expected = once.clone();
        expected.add_assign(&once);
        assert_close(&twice, &expected, 1e-5);
    }

    #[test]
    #[should_panic(expected = "inner dims differ")]
    fn matmul_rejects_dim_mismatch() {
        let _ = matmul(&Tensor::zeros([2, 3]), &Tensor::zeros([4, 2]));
    }

    #[test]
    fn large_matmul_parallel_path_agrees() {
        // Big enough to cross PAR_FLOPS_THRESHOLD with >1 thread configured.
        let mut rng = StdRng::seed_from_u64(8);
        let a = Tensor::randn([128, 96], 1.0, &mut rng);
        let b = Tensor::randn([96, 112], 1.0, &mut rng);
        assert_close(&matmul(&a, &b), &naive_matmul(&a, &b), 1e-4);
    }
}
