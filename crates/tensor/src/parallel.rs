//! Scoped data parallelism built on `crossbeam::scope`.
//!
//! FL clients train concurrently on OS threads at the `fedca-core` layer,
//! so the tensor kernels here stay lean: one helper that splits a mutable
//! buffer into disjoint chunks and processes them on scoped threads, and a
//! knob for how many threads to use. The split is by *rows of work*, and the
//! closure receives the chunk's starting offset so kernels can recover
//! global indices.
//!
//! Following the perf-book guidance, parallel dispatch only kicks in above a
//! work threshold — thread spawning costs microseconds, which dwarfs the
//! small matmuls of a 60K-parameter federated model.

/// Number of worker threads used by parallel kernels.
///
/// Defaults to the machine's available parallelism; override with the
/// `FEDCA_THREADS` environment variable (useful to pin experiments to one
/// core for determinism-of-timing studies).
pub fn num_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("FEDCA_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Minimum number of multiply-add operations before a matmul-shaped kernel
/// goes parallel. Thread dispatch costs microseconds, which dwarfs the small
/// matmuls of a 60K-parameter federated model.
///
/// This constant used to be copy-pasted into each kernel in `ops.rs`; it now
/// lives here as the single source of truth, consumed via
/// [`matmul_thread_count`].
pub const PAR_FLOPS_THRESHOLD: usize = 1 << 20;

/// The one min-par heuristic shared by every matmul variant (including the
/// weight-gradient kernel, which historically never parallelized): returns
/// how many threads a kernel with `flops` multiply-adds should use.
///
/// Returns 1 below [`PAR_FLOPS_THRESHOLD`], otherwise [`num_threads`].
#[inline]
pub fn matmul_thread_count(flops: usize) -> usize {
    if flops >= PAR_FLOPS_THRESHOLD {
        num_threads()
    } else {
        1
    }
}

/// Applies `f` to disjoint mutable chunks of `data`, in parallel when the
/// buffer is large enough and more than one thread is configured.
///
/// `chunk_rows` elements stay together (e.g. one output row of a matmul), so
/// `data.len()` must be a multiple of `chunk_rows`. The closure receives
/// `(start_element_offset, chunk)`.
///
/// # Panics
/// Panics if `chunk_rows == 0` or `data.len() % chunk_rows != 0`.
pub fn par_chunks_mut<F>(data: &mut [f32], chunk_rows: usize, min_par_len: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk_rows > 0, "chunk_rows must be positive");
    assert_eq!(
        data.len() % chunk_rows,
        0,
        "buffer length {} not a multiple of row size {}",
        data.len(),
        chunk_rows
    );
    let threads = num_threads();
    if threads <= 1 || data.len() < min_par_len {
        f(0, data);
        return;
    }
    let total_rows = data.len() / chunk_rows;
    let rows_per_thread = total_rows.div_ceil(threads);
    let split = rows_per_thread * chunk_rows;
    crossbeam::scope(|s| {
        let mut offset = 0usize;
        let mut rest = data;
        while !rest.is_empty() {
            let take = split.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            let start = offset;
            let fref = &f;
            s.spawn(move |_| fref(start, head));
            offset += take;
            rest = tail;
        }
    })
    .expect("parallel worker panicked");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_fallback_small_buffers() {
        let mut v = vec![1.0f32; 8];
        par_chunks_mut(&mut v, 2, usize::MAX, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (start + i) as f32;
            }
        });
        assert_eq!(v, (0..8).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_path_covers_every_element_exactly_once() {
        let n = 10_000;
        let mut v = vec![0.0f32; n];
        par_chunks_mut(&mut v, 4, 0, |start, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x += (start + i) as f32 + 1.0;
            }
        });
        for (i, &x) in v.iter().enumerate() {
            assert_eq!(x, i as f32 + 1.0, "element {i} processed wrongly");
        }
    }

    #[test]
    fn respects_row_boundaries() {
        // With chunk_rows = 5, every chunk offset must be a multiple of 5.
        let mut v = vec![0.0f32; 100];
        par_chunks_mut(&mut v, 5, 0, |start, chunk| {
            assert_eq!(start % 5, 0);
            assert_eq!(chunk.len() % 5, 0);
        });
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn rejects_misaligned_buffers() {
        let mut v = vec![0.0f32; 7];
        par_chunks_mut(&mut v, 2, 0, |_, _| {});
    }

    #[test]
    fn num_threads_is_at_least_one() {
        assert!(num_threads() >= 1);
    }

    #[test]
    fn matmul_thread_count_heuristic() {
        assert_eq!(matmul_thread_count(0), 1);
        assert_eq!(matmul_thread_count(PAR_FLOPS_THRESHOLD - 1), 1);
        assert_eq!(matmul_thread_count(PAR_FLOPS_THRESHOLD), num_threads());
    }
}
