//! Tensor shapes: a thin, validated wrapper over a dimension list.
//!
//! Shapes are row-major ("C order") throughout the workspace. A `Shape`
//! never describes a tensor with more elements than `isize::MAX`, matching
//! the guarantees Rust slices need.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A row-major tensor shape.
///
/// The empty shape `[]` denotes a scalar with one element, mirroring NumPy
/// and PyTorch semantics.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Builds a shape from its dimensions.
    ///
    /// # Panics
    /// Panics if the element count overflows `usize`.
    pub fn new(dims: &[usize]) -> Self {
        let mut n: usize = 1;
        for &d in dims {
            n = n
                .checked_mul(d)
                .expect("shape element count overflows usize");
        }
        Shape(dims.to_vec())
    }

    /// Dimensions as a slice.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements. The scalar shape has one element.
    #[inline]
    pub fn num_elements(&self) -> usize {
        self.0.iter().product()
    }

    /// Dimension `i`.
    ///
    /// # Panics
    /// Panics if `i >= rank()`.
    #[inline]
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear (row-major) offset of a multi-dimensional index.
    ///
    /// # Panics
    /// Panics (debug assertions) if the index rank or any coordinate is out
    /// of range.
    #[inline]
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.0.len(), "index rank mismatch");
        let mut off = 0usize;
        let mut stride = 1usize;
        for i in (0..self.0.len()).rev() {
            debug_assert!(index[i] < self.0[i], "index out of bounds");
            off += index[i] * stride;
            stride *= self.0[i];
        }
        off
    }

    /// Whether two shapes have the same element count (reshape-compatible).
    #[inline]
    pub fn same_volume(&self, other: &Shape) -> bool {
        self.num_elements() == other.num_elements()
    }

    /// Rewrites the dimension list in place, reusing the existing
    /// allocation when capacity allows. This is what lets pooled tensors
    /// (see `fedca-nn`'s workspace) change shape without heap traffic.
    ///
    /// # Panics
    /// Panics if the element count overflows `usize`.
    pub fn set_dims(&mut self, dims: &[usize]) {
        let mut n: usize = 1;
        for &d in dims {
            n = n
                .checked_mul(d)
                .expect("shape element count overflows usize");
        }
        self.0.clear();
        self.0.extend_from_slice(dims);
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape::new(&dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        let s = Shape::new(&dims);
        drop(dims);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::new(&[]);
        assert_eq!(s.rank(), 0);
        assert_eq!(s.num_elements(), 1);
    }

    #[test]
    fn num_elements_is_product() {
        assert_eq!(Shape::new(&[2, 3, 4]).num_elements(), 24);
        assert_eq!(Shape::new(&[7]).num_elements(), 7);
        assert_eq!(Shape::new(&[5, 0, 3]).num_elements(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[6]).strides(), vec![1]);
        assert_eq!(Shape::new(&[]).strides(), Vec::<usize>::new());
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
        assert_eq!(s.offset(&[0, 1, 1]), 5);
    }

    #[test]
    fn offset_enumerates_all_cells_once() {
        let s = Shape::new(&[3, 5]);
        let mut seen = [false; 15];
        for i in 0..3 {
            for j in 0..5 {
                let off = s.offset(&[i, j]);
                assert!(!seen[off], "offset {off} visited twice");
                seen[off] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn same_volume_accepts_reshapes() {
        assert!(Shape::new(&[2, 6]).same_volume(&Shape::new(&[3, 4])));
        assert!(!Shape::new(&[2, 6]).same_volume(&Shape::new(&[5])));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn overflowing_shape_panics() {
        let _ = Shape::new(&[usize::MAX, 2]);
    }

    #[test]
    fn conversions() {
        let a: Shape = [2usize, 3].into();
        let b = Shape::from(vec![2usize, 3]);
        assert_eq!(a, b);
        assert_eq!(format!("{a}"), "[2, 3]");
    }
}
