//! Tier-gated SIMD transcendentals for the training hot loops.
//!
//! The packed GEMM ([`crate::gemm`]) removes most of the matrix-multiply
//! cost, which leaves the LSTM's per-gate `sigmoid`/`tanh` loop as the
//! dominant term of its iteration time (≈80k libm calls per batch-16
//! iteration at the scaled shapes). This module provides vectorized
//! drop-ins for exactly that loop.
//!
//! # Numerics and tiering
//!
//! The vector `exp` is the classic Cephes-style polynomial (range-reduced
//! by `log2 e`, 6th-order minimax, exponent reassembled through the IEEE
//! bit pattern). It agrees with libm to a few ulps but is **not**
//! bit-identical to it, so these routines follow the same contract as the
//! GEMM microkernels: trajectories are bit-identical across thread counts
//! *within* a dispatch tier, never across tiers. Callers must gate on
//! [`crate::gemm::active_kernel`] and keep the scalar tier on the scalar
//! libm path — that is what keeps the committed scalar-tier golden traces
//! valid (see DESIGN.md §10).
//!
//! Only an AVX2+FMA implementation exists today; on the NEON tier callers
//! fall back to the scalar path, which keeps aarch64 trajectories
//! identical to the pre-SIMD ones.

/// True when [`lstm_gates_fast`] / [`lstm_cell_update_fast`] have a
/// vectorized implementation for `kernel`. Callers use this to pick
/// between the scalar (libm) loop and the fast path.
pub fn has_fast_transcendentals(kernel: crate::gemm::Kernel) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        kernel == crate::gemm::Kernel::Avx2
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = kernel;
        false
    }
}

/// Activates one LSTM pre-activation row `z = [i|f|g|o]` (each block
/// `hdim` wide) into the four gate buffers: `i,f,o ← σ(z)`, `g ← tanh(z)`.
///
/// # Panics
/// Panics if a fast path is unavailable (callers must check
/// [`has_fast_transcendentals`] first) or if slice lengths disagree.
pub fn lstm_gates_fast(
    z: &[f32],
    hdim: usize,
    i: &mut [f32],
    f: &mut [f32],
    g: &mut [f32],
    o: &mut [f32],
) {
    assert_eq!(z.len(), 4 * hdim, "z must hold 4 gate blocks");
    assert!(
        i.len() >= hdim && f.len() >= hdim && g.len() >= hdim && o.len() >= hdim,
        "gate buffers too short"
    );
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: the Avx2 tier is only ever latched when runtime detection
        // confirmed avx2+fma (see `gemm::detect_kernel`).
        unsafe {
            avx2::sigmoid_slice(&z[..hdim], &mut i[..hdim]);
            avx2::sigmoid_slice(&z[hdim..2 * hdim], &mut f[..hdim]);
            avx2::tanh_slice(&z[2 * hdim..3 * hdim], &mut g[..hdim]);
            avx2::sigmoid_slice(&z[3 * hdim..4 * hdim], &mut o[..hdim]);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (z, hdim, i, f, g, o);
        unreachable!("lstm_gates_fast called without a SIMD tier");
    }
}

/// Fused LSTM cell update: `c ← f⊙c_prev + i⊙g`, `tanh_c ← tanh(c)`,
/// `h ← o⊙tanh_c`, elementwise over `n` cells.
///
/// # Panics
/// Panics if a fast path is unavailable or if slice lengths disagree.
#[allow(clippy::too_many_arguments)]
pub fn lstm_cell_update_fast(
    i: &[f32],
    f: &[f32],
    g: &[f32],
    o: &[f32],
    c_prev: &[f32],
    c: &mut [f32],
    tanh_c: &mut [f32],
    h: &mut [f32],
) {
    let n = c.len();
    assert!(
        i.len() == n
            && f.len() == n
            && g.len() == n
            && o.len() == n
            && c_prev.len() == n
            && tanh_c.len() == n
            && h.len() == n,
        "cell-update slice lengths disagree"
    );
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: only reachable on the Avx2 tier (see above).
        unsafe { avx2::cell_update(i, f, g, o, c_prev, c, tanh_c, h) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = (i, f, g, o, c_prev, c, tanh_c, h);
        unreachable!("lstm_cell_update_fast called without a SIMD tier");
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    // Cephes exp constants (single precision).
    const EXP_HI: f32 = 88.376_26;
    const EXP_LO: f32 = -87.336_55;
    const LOG2EF: f32 = std::f32::consts::LOG2_E;
    const C1: f32 = 0.693_359_4; // ln 2, high part
    const C2: f32 = -2.121_944_4e-4; // ln 2, low part
    const P0: f32 = 1.987_569_1e-4;
    const P1: f32 = 1.398_199_9e-3;
    const P2: f32 = 8.333_452e-3;
    const P3: f32 = 4.166_579_5e-2;
    const P4: f32 = 1.666_666_6e-1;
    const P5: f32 = 5e-1;

    /// Vector `e^x` for one lane group, |rel err| ≲ 2e-7 over the clamped
    /// range.
    #[inline(always)]
    unsafe fn exp_ps(x: __m256) -> __m256 {
        let x = _mm256_min_ps(x, _mm256_set1_ps(EXP_HI));
        let x = _mm256_max_ps(x, _mm256_set1_ps(EXP_LO));
        // n = round(x / ln2) via floor(x·log2e + 0.5).
        let fx = _mm256_fmadd_ps(x, _mm256_set1_ps(LOG2EF), _mm256_set1_ps(0.5));
        let n = _mm256_floor_ps(fx);
        // r = x − n·ln2, split into high/low parts for extra precision.
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(C1), x);
        let r = _mm256_fnmadd_ps(n, _mm256_set1_ps(C2), r);
        // Minimax polynomial for e^r on [−ln2/2, ln2/2].
        let mut y = _mm256_set1_ps(P0);
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(P1));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(P2));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(P3));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(P4));
        y = _mm256_fmadd_ps(y, r, _mm256_set1_ps(P5));
        let r2 = _mm256_mul_ps(r, r);
        y = _mm256_fmadd_ps(y, r2, r);
        y = _mm256_add_ps(y, _mm256_set1_ps(1.0));
        // 2^n through the exponent field.
        let exp_bits = _mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_cvtps_epi32(n),
            _mm256_set1_epi32(0x7f),
        ));
        _mm256_mul_ps(y, _mm256_castsi256_ps(exp_bits))
    }

    /// σ(x) = 1 / (1 + e^{−x}).
    #[inline(always)]
    unsafe fn sigmoid_ps(x: __m256) -> __m256 {
        let e = exp_ps(_mm256_sub_ps(_mm256_setzero_ps(), x));
        _mm256_div_ps(_mm256_set1_ps(1.0), _mm256_add_ps(_mm256_set1_ps(1.0), e))
    }

    /// tanh(x) = 1 − 2/(e^{2x} + 1), clamped where it saturates in f32.
    #[inline(always)]
    unsafe fn tanh_ps(x: __m256) -> __m256 {
        // |x| ≥ 10 comfortably rounds to ±1 in f32; clamping keeps 2x inside
        // exp's exact range.
        let x = _mm256_min_ps(x, _mm256_set1_ps(10.0));
        let x = _mm256_max_ps(x, _mm256_set1_ps(-10.0));
        let e2x = exp_ps(_mm256_add_ps(x, x));
        let two = _mm256_set1_ps(2.0);
        _mm256_sub_ps(
            _mm256_set1_ps(1.0),
            _mm256_div_ps(two, _mm256_add_ps(e2x, _mm256_set1_ps(1.0))),
        )
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn sigmoid_slice(x: &[f32], out: &mut [f32]) {
        let n = x.len();
        let mut p = 0;
        while p + 8 <= n {
            let v = _mm256_loadu_ps(x.as_ptr().add(p));
            _mm256_storeu_ps(out.as_mut_ptr().add(p), sigmoid_ps(v));
            p += 8;
        }
        if p < n {
            // Remainder through the same vector math (via a stack pad) so
            // every element sees identical arithmetic.
            let mut pad = [0.0f32; 8];
            pad[..n - p].copy_from_slice(&x[p..]);
            let v = _mm256_loadu_ps(pad.as_ptr());
            _mm256_storeu_ps(pad.as_mut_ptr(), sigmoid_ps(v));
            out[p..n].copy_from_slice(&pad[..n - p]);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn tanh_slice(x: &[f32], out: &mut [f32]) {
        let n = x.len();
        let mut p = 0;
        while p + 8 <= n {
            let v = _mm256_loadu_ps(x.as_ptr().add(p));
            _mm256_storeu_ps(out.as_mut_ptr().add(p), tanh_ps(v));
            p += 8;
        }
        if p < n {
            let mut pad = [0.0f32; 8];
            pad[..n - p].copy_from_slice(&x[p..]);
            let v = _mm256_loadu_ps(pad.as_ptr());
            _mm256_storeu_ps(pad.as_mut_ptr(), tanh_ps(v));
            out[p..n].copy_from_slice(&pad[..n - p]);
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn cell_update(
        i: &[f32],
        f: &[f32],
        g: &[f32],
        o: &[f32],
        c_prev: &[f32],
        c: &mut [f32],
        tanh_c: &mut [f32],
        h: &mut [f32],
    ) {
        let n = c.len();
        let mut p = 0;
        while p + 8 <= n {
            let iv = _mm256_loadu_ps(i.as_ptr().add(p));
            let fv = _mm256_loadu_ps(f.as_ptr().add(p));
            let gv = _mm256_loadu_ps(g.as_ptr().add(p));
            let ov = _mm256_loadu_ps(o.as_ptr().add(p));
            let cp = _mm256_loadu_ps(c_prev.as_ptr().add(p));
            let cv = _mm256_fmadd_ps(fv, cp, _mm256_mul_ps(iv, gv));
            _mm256_storeu_ps(c.as_mut_ptr().add(p), cv);
            let tc = tanh_ps(cv);
            _mm256_storeu_ps(tanh_c.as_mut_ptr().add(p), tc);
            _mm256_storeu_ps(h.as_mut_ptr().add(p), _mm256_mul_ps(ov, tc));
            p += 8;
        }
        while p < n {
            let cv = f[p].mul_add(c_prev[p], i[p] * g[p]);
            c[p] = cv;
            // Scalar remainder of the same rational tanh as `tanh_ps`.
            let xc = cv.clamp(-10.0, 10.0);
            let tc = 1.0 - 2.0 / ((2.0 * xc).exp() + 1.0);
            tanh_c[p] = tc;
            h[p] = o[p] * tc;
            p += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::Kernel;

    #[test]
    fn fast_paths_exist_exactly_where_expected() {
        assert!(!has_fast_transcendentals(Kernel::Scalar));
        #[cfg(target_arch = "x86_64")]
        assert!(has_fast_transcendentals(Kernel::Avx2));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn vector_gates_match_libm_closely() {
        if !Kernel::Avx2.is_available() {
            return;
        }
        let hdim = 13; // odd width exercises the pad remainder
        let z: Vec<f32> = (0..4 * hdim)
            .map(|k| ((k as f32) * 0.37 - 9.5).sin() * 6.0)
            .collect();
        let (mut i, mut f) = (vec![0.0f32; hdim], vec![0.0f32; hdim]);
        let (mut g, mut o) = (vec![0.0f32; hdim], vec![0.0f32; hdim]);
        lstm_gates_fast(&z, hdim, &mut i, &mut f, &mut g, &mut o);
        for k in 0..hdim {
            let sig = |x: f32| 1.0 / (1.0 + (-x).exp());
            assert!((i[k] - sig(z[k])).abs() < 1e-6, "i[{k}]");
            assert!((f[k] - sig(z[hdim + k])).abs() < 1e-6, "f[{k}]");
            assert!((g[k] - z[2 * hdim + k].tanh()).abs() < 1e-6, "g[{k}]");
            assert!((o[k] - sig(z[3 * hdim + k])).abs() < 1e-6, "o[{k}]");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn vector_cell_update_matches_scalar_formula() {
        if !Kernel::Avx2.is_available() {
            return;
        }
        let n = 19;
        let v = |s: f32| -> Vec<f32> { (0..n).map(|k| ((k as f32) + s).cos()).collect() };
        let (i, f, g, o, cp) = (v(0.1), v(0.2), v(0.3), v(0.4), v(0.5));
        let mut c = vec![0.0f32; n];
        let mut tc = vec![0.0f32; n];
        let mut h = vec![0.0f32; n];
        lstm_cell_update_fast(&i, &f, &g, &o, &cp, &mut c, &mut tc, &mut h);
        for k in 0..n {
            let cv = f[k] * cp[k] + i[k] * g[k];
            assert!((c[k] - cv).abs() < 1e-6);
            assert!((tc[k] - cv.tanh()).abs() < 1e-6);
            assert!((h[k] - o[k] * cv.tanh()).abs() < 1e-6);
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn vector_transcendentals_saturate_cleanly_at_the_extremes() {
        if !Kernel::Avx2.is_available() {
            return;
        }
        let hdim = 8;
        let mut z = vec![0.0f32; 4 * hdim];
        for k in 0..hdim {
            z[k] = 120.0; // σ → 1
            z[hdim + k] = -120.0; // σ → 0
            z[2 * hdim + k] = if k % 2 == 0 { 40.0 } else { -40.0 }; // tanh → ±1
            z[3 * hdim + k] = 0.0; // σ → 0.5
        }
        let (mut i, mut f) = (vec![0.0f32; hdim], vec![0.0f32; hdim]);
        let (mut g, mut o) = (vec![0.0f32; hdim], vec![0.0f32; hdim]);
        lstm_gates_fast(&z, hdim, &mut i, &mut f, &mut g, &mut o);
        for k in 0..hdim {
            assert_eq!(i[k], 1.0);
            // exp clamps rather than overflowing, so σ(−120) is a
            // subnormal whisker above zero instead of exactly 0.0.
            assert!(f[k] >= 0.0 && f[k] < 1e-30, "f[{k}] = {}", f[k]);
            assert_eq!(g[k], if k % 2 == 0 { 1.0 } else { -1.0 });
            assert_eq!(o[k], 0.5);
            assert!(i[k].is_finite() && g[k].is_finite());
        }
    }
}
