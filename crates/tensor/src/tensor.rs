//! The dense `f32` tensor type.
//!
//! `Tensor` owns a contiguous row-major buffer. Views and fancy striding are
//! deliberately absent: the NN layers in `fedca-nn` operate on whole
//! contiguous buffers, and copies are explicit, which keeps the hot paths
//! easy to reason about and the borrow story trivial.

use crate::shape::Shape;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major, heap-allocated `f32` tensor.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Self {
        let shape = shape.into();
        assert_eq!(
            shape.num_elements(),
            data.len(),
            "buffer length {} does not match shape {} ({} elements)",
            data.len(),
            shape,
            shape.num_elements()
        );
        Tensor { shape, data }
    }

    /// Samples i.i.d. `N(0, std^2)` entries using the Box–Muller transform.
    ///
    /// Going through a caller-supplied [`Rng`] keeps every model init
    /// reproducible from the experiment seed.
    pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            // Box–Muller: two uniforms -> two independent normals.
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { shape, data }
    }

    /// Samples i.i.d. `U(lo, hi)` entries.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Self {
        let shape = shape.into();
        let n = shape.num_elements();
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { shape, data }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Dimensions as a slice (shorthand for `shape().dims()`).
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying buffer (row-major).
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    #[inline]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Capacity (in elements) of the underlying buffer. Used by buffer
    /// pools to pick the best-fitting recycled tensor.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Re-dimensions the tensor in place, reusing both the data and the
    /// shape allocations. Unlike [`Tensor::reshape`] the element count may
    /// change: grown regions are zero-filled, the surviving prefix keeps
    /// its old contents. No heap traffic occurs once capacity suffices.
    pub fn resize(&mut self, dims: &[usize]) {
        self.shape.set_dims(dims);
        let n = self.shape.num_elements();
        self.data.resize(n, 0.0);
    }

    /// Overwrites `self` with `src`'s shape and contents, reusing the
    /// existing allocations (no zero-fill, no reallocation once capacity
    /// suffices).
    pub fn copy_from(&mut self, src: &Tensor) {
        self.shape.set_dims(src.dims());
        self.data.clear();
        self.data.extend_from_slice(src.as_slice());
    }

    /// Element at a multi-dimensional index.
    #[inline]
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Mutable element at a multi-dimensional index.
    #[inline]
    pub fn at_mut(&mut self, index: &[usize]) -> &mut f32 {
        let off = self.shape.offset(index);
        &mut self.data[off]
    }

    /// Returns a tensor with the same buffer and a new shape.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert!(
            self.shape.same_volume(&shape),
            "cannot reshape {} ({} elements) to {} ({} elements)",
            self.shape,
            self.shape.num_elements(),
            shape,
            shape.num_elements()
        );
        self.shape = shape;
        self
    }

    /// In-place elementwise addition. `self += other`.
    ///
    /// # Panics
    /// Panics if shapes differ in element count.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.len(), other.len(), "add_assign length mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place elementwise subtraction. `self -= other`.
    pub fn sub_assign(&mut self, other: &Tensor) {
        assert_eq!(self.len(), other.len(), "sub_assign length mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
    }

    /// In-place scaling. `self *= s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// In-place `self += s * other` (AXPY).
    pub fn axpy(&mut self, s: f32, other: &Tensor) {
        assert_eq!(self.len(), other.len(), "axpy length mismatch");
        crate::linalg::axpy(s, other.as_slice(), self.as_mut_slice());
    }

    /// Out-of-place elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Out-of-place elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Out-of-place elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&a| f(a)).collect(),
        }
    }

    /// Fills the tensor with zeros without reallocating.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements; `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// L2 norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        crate::linalg::l2_norm(&self.data)
    }

    /// Maximum element; `f32::NEG_INFINITY` for an empty tensor.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element in each row of a 2-D tensor.
    ///
    /// # Panics
    /// Panics if the tensor is not 2-D or a row is empty.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.shape.rank(), 2, "argmax_rows requires a 2-D tensor");
        let (n, c) = (self.shape.dim(0), self.shape.dim(1));
        assert!(c > 0, "argmax_rows on empty rows");
        (0..n)
            .map(|i| {
                let row = &self.data[i * c..(i + 1) * c];
                let mut best = 0usize;
                for (j, &x) in row.iter().enumerate().skip(1) {
                    if x > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }

    /// Whether every element is finite (no NaN/inf). Useful for failure
    /// injection tests and debug assertions in the training loop.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={}, ", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, "data={:?})", self.data)
        } else {
            write!(
                f,
                "data=[{:.4}, {:.4}, …, {:.4}] ({} elems))",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1],
                self.data.len()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros([2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let f = Tensor::full([4], 2.5);
        assert!(f.as_slice().iter().all(|&x| x == 2.5));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec([2, 2], vec![1.0; 3]);
    }

    #[test]
    fn randn_is_seeded_and_roughly_normal() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::randn([10_000], 1.0, &mut rng);
        let mean = t.mean();
        let var = t.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.1, "variance {var} too far from 1");

        let mut rng2 = StdRng::seed_from_u64(7);
        let t2 = Tensor::randn([10_000], 1.0, &mut rng2);
        assert_eq!(t, t2, "same seed must give the same tensor");
    }

    #[test]
    fn randn_odd_length() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::randn([7], 0.5, &mut rng);
        assert_eq!(t.len(), 7);
        assert!(t.all_finite());
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec([3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec([3], vec![10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b).as_slice(), &[11.0, 22.0, 33.0]);
        assert_eq!(b.sub(&a).as_slice(), &[9.0, 18.0, 27.0]);
        let mut c = a.clone();
        c.scale(2.0);
        assert_eq!(c.as_slice(), &[2.0, 4.0, 6.0]);
        c.axpy(-1.0, &a);
        assert_eq!(c.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.clone().reshape([3, 2]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.dims(), &[3, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_volume_change() {
        let _ = Tensor::zeros([2, 3]).reshape([4]);
    }

    #[test]
    fn indexing_round_trip() {
        let mut t = Tensor::zeros([2, 3]);
        *t.at_mut(&[1, 2]) = 42.0;
        assert_eq!(t.at(&[1, 2]), 42.0);
        assert_eq!(t.as_slice()[5], 42.0);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec([4], vec![1.0, -2.0, 3.0, -4.0]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.max(), 3.0);
        assert!((t.l2_norm() - (30.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_rows_picks_first_max_per_row() {
        let t = Tensor::from_vec([2, 3], vec![0.1, 0.9, 0.3, 5.0, 5.0, 1.0]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        let mut t = Tensor::zeros([3]);
        assert!(t.all_finite());
        t.as_mut_slice()[1] = f32::NAN;
        assert!(!t.all_finite());
        t.as_mut_slice()[1] = f32::INFINITY;
        assert!(!t.all_finite());
    }

    #[test]
    fn map_and_fill() {
        let mut t = Tensor::from_vec([3], vec![1.0, -1.0, 2.0]);
        let relu = t.map(|x| x.max(0.0));
        assert_eq!(relu.as_slice(), &[1.0, 0.0, 2.0]);
        t.map_inplace(|x| x * x);
        assert_eq!(t.as_slice(), &[1.0, 1.0, 4.0]);
        t.fill_zero();
        assert_eq!(t.sum(), 0.0);
    }
}
