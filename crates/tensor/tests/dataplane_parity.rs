//! Per-tier bit-identity parity suite for the data-plane kernels.
//!
//! The GEMM parity suite tolerates small numeric drift between tiers; this
//! one does not. Data-plane kernels (scale scan, deterministic level
//! quantization, wire bit-pack/unpack, AXPY, fused dequantize-accumulate)
//! are contracted to produce the *same bits* on every tier, which is what
//! lets the aggregator's fold run vectorized under the committed
//! scalar-recorded golden fixtures. Each property draws lengths straddling
//! the 8-lane vector width (tails included), splices non-finite specials
//! into the float inputs, and compares every available tier against the
//! scalar reference via `to_bits`.

use fedca_tensor::dataplane::{
    all_finite_on, axpy_on, axpy_quantized_on, dequantize_levels_on, dequantize_packed_on,
    max_abs_on, pack_levels_on, packed_len, quantize_levels_on, unpack_levels_on,
};
use fedca_tensor::gemm::{available_kernels, Kernel};
use proptest::prelude::*;

const SPECIALS: [f32; 5] = [f32::NAN, f32::INFINITY, f32::NEG_INFINITY, -0.0, 1e-41];

/// Splices special values into `x` at pseudo-positions drawn by the test.
fn splice(x: &mut [f32], specials: &[(usize, usize)]) {
    for &(pos, kind) in specials {
        if !x.is_empty() {
            x[pos % x.len()] = SPECIALS[kind % SPECIALS.len()];
        }
    }
}

fn bits_of(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn derived(bits: u8) -> (u8, u32) {
    let num_levels = ((1u16 << (bits - 1)) - 1).max(1) as u8;
    let width = (bits + 1).min(8) as u32;
    (num_levels, width)
}

proptest! {
    #[test]
    fn max_abs_matches_scalar_bitwise(
        (mut x, specials) in (
            prop::collection::vec(-8.0f32..8.0, 0..129),
            prop::collection::vec((0usize..129, 0usize..8), 0..4),
        )
    ) {
        splice(&mut x, &specials);
        let want = max_abs_on(Kernel::Scalar, &x);
        for k in available_kernels() {
            let got = max_abs_on(k, &x);
            prop_assert_eq!(got.to_bits(), want.to_bits(), "max_abs kernel {}", k.name());
        }
    }

    #[test]
    fn quantize_levels_matches_scalar_bitwise(
        (mut x, specials, bits) in (
            prop::collection::vec(-4.0f32..4.0, 1..100),
            prop::collection::vec((0usize..100, 0usize..8), 0..3),
            1u8..9,
        )
    ) {
        splice(&mut x, &specials);
        let (num_levels, _) = derived(bits);
        // The quantizers derive scale from the data; a zero-scale vector
        // takes the all-zero-levels early return and never reaches the
        // kernel, so mirror that precondition here.
        let scale = max_abs_on(Kernel::Scalar, &x);
        prop_assume!(scale != 0.0);
        let mut want = vec![0i8; x.len()];
        quantize_levels_on(Kernel::Scalar, &x, scale, num_levels, &mut want);
        for k in available_kernels() {
            let mut got = vec![0i8; x.len()];
            quantize_levels_on(k, &x, scale, num_levels, &mut got);
            prop_assert_eq!(&got, &want, "quantize_levels kernel {} bits {}", k.name(), bits);
        }
    }

    #[test]
    fn pack_unpack_match_scalar_bitwise(
        (raw, bits) in (
            prop::collection::vec(0usize..256, 0..120),
            1u8..9,
        )
    ) {
        let (num_levels, width) = derived(bits);
        // Legal encoder levels only: out-of-range levels overflow their
        // offset-binary field (documented precondition).
        let span = 2 * num_levels as i32 + 1;
        let levels: Vec<i8> = raw
            .iter()
            .map(|&b| ((b as i32 % span) - num_levels as i32) as i8)
            .collect();
        let mut want = vec![0u8; packed_len(levels.len(), width)];
        pack_levels_on(Kernel::Scalar, &levels, num_levels, width, &mut want);
        for k in available_kernels() {
            let mut got = vec![0u8; want.len()];
            pack_levels_on(k, &levels, num_levels, width, &mut got);
            prop_assert_eq!(&got, &want, "pack_levels kernel {} bits {}", k.name(), bits);
        }
        // Unpack parity over the (valid) packed stream...
        let mut back = vec![0i8; levels.len()];
        unpack_levels_on(Kernel::Scalar, &want, num_levels, width, &mut back);
        prop_assert_eq!(&back, &levels, "scalar round trip bits {}", bits);
        for k in available_kernels() {
            let mut got = vec![0i8; levels.len()];
            unpack_levels_on(k, &want, num_levels, width, &mut got);
            prop_assert_eq!(&got, &back, "unpack_levels kernel {} bits {}", k.name(), bits);
        }
    }

    #[test]
    fn unpack_of_arbitrary_bytes_matches_scalar(
        (packed, n, bits) in (
            prop::collection::vec(0usize..256, 0..128),
            0usize..100,
            1u8..9,
        )
    ) {
        // Malformed wire bytes must decode deterministically and
        // identically on every tier (the truncating `as i8` cast).
        let packed: Vec<u8> = packed.iter().map(|&b| b as u8).collect();
        let (num_levels, width) = derived(bits);
        prop_assume!(packed.len() >= packed_len(n, width));
        let mut want = vec![0i8; n];
        unpack_levels_on(Kernel::Scalar, &packed, num_levels, width, &mut want);
        for k in available_kernels() {
            let mut got = vec![0i8; n];
            unpack_levels_on(k, &packed, num_levels, width, &mut got);
            prop_assert_eq!(&got, &want, "unpack arbitrary kernel {} bits {}", k.name(), bits);
        }
    }

    #[test]
    fn dequantize_levels_matches_scalar_bitwise(
        (raw, bits, scale) in (
            prop::collection::vec(0usize..256, 0..100),
            1u8..9,
            -3.0f32..3.0,
        )
    ) {
        let (num_levels, _) = derived(bits);
        let span = 2 * num_levels as i32 + 1;
        let levels: Vec<i8> = raw
            .iter()
            .map(|&b| ((b as i32 % span) - num_levels as i32) as i8)
            .collect();
        let mut want = vec![0.0f32; levels.len()];
        dequantize_levels_on(Kernel::Scalar, &levels, scale, num_levels, &mut want);
        for k in available_kernels() {
            let mut got = vec![0.0f32; levels.len()];
            dequantize_levels_on(k, &levels, scale, num_levels, &mut got);
            prop_assert_eq!(bits_of(&got), bits_of(&want), "dequantize kernel {}", k.name());
        }
    }

    #[test]
    fn axpy_matches_scalar_bitwise(
        (mut x, mut y, specials, alpha) in (
            prop::collection::vec(-8.0f32..8.0, 0..129),
            prop::collection::vec(-8.0f32..8.0, 0..129),
            prop::collection::vec((0usize..129, 0usize..8), 0..4),
            -2.0f32..2.0,
        )
    ) {
        let n = x.len().min(y.len());
        x.truncate(n);
        y.truncate(n);
        splice(&mut x, &specials);
        let mut want = y.clone();
        axpy_on(Kernel::Scalar, alpha, &x, &mut want);
        for k in available_kernels() {
            let mut got = y.clone();
            axpy_on(k, alpha, &x, &mut got);
            prop_assert_eq!(bits_of(&got), bits_of(&want), "axpy kernel {}", k.name());
        }
    }

    #[test]
    fn fused_axpy_quantized_matches_scalar_and_unfused(
        (packed, y0, bits, scale, alpha) in (
            prop::collection::vec(0usize..256, 0..128),
            prop::collection::vec(-8.0f32..8.0, 0..100),
            1u8..9,
            -3.0f32..3.0,
            -2.0f32..2.0,
        )
    ) {
        let packed: Vec<u8> = packed.iter().map(|&b| b as u8).collect();
        let (num_levels, width) = derived(bits);
        let n = y0.len();
        prop_assume!(packed.len() >= packed_len(n, width));
        // Scalar fused is the reference...
        let mut want = y0.clone();
        axpy_quantized_on(Kernel::Scalar, alpha, scale, num_levels, width, &packed, &mut want);
        // ...and must itself equal unpack → dequantize → axpy.
        let mut levels = vec![0i8; n];
        unpack_levels_on(Kernel::Scalar, &packed, num_levels, width, &mut levels);
        let mut dense = vec![0.0f32; n];
        dequantize_levels_on(Kernel::Scalar, &levels, scale, num_levels, &mut dense);
        let mut unfused = y0.clone();
        axpy_on(Kernel::Scalar, alpha, &dense, &mut unfused);
        prop_assert_eq!(bits_of(&want), bits_of(&unfused), "fused != unfused (scalar)");
        for k in available_kernels() {
            let mut got = y0.clone();
            axpy_quantized_on(k, alpha, scale, num_levels, width, &packed, &mut got);
            prop_assert_eq!(bits_of(&got), bits_of(&want), "axpy_quantized kernel {}", k.name());
        }
    }

    #[test]
    fn dequantize_packed_matches_scalar_bitwise(
        (packed, n, bits, scale) in (
            prop::collection::vec(0usize..256, 0..128),
            0usize..100,
            1u8..9,
            -3.0f32..3.0,
        )
    ) {
        let packed: Vec<u8> = packed.iter().map(|&b| b as u8).collect();
        let (num_levels, width) = derived(bits);
        prop_assume!(packed.len() >= packed_len(n, width));
        let mut want = vec![0.0f32; n];
        dequantize_packed_on(Kernel::Scalar, &packed, scale, num_levels, width, &mut want);
        // Equals the two-step unpack + dequantize...
        let mut levels = vec![0i8; n];
        unpack_levels_on(Kernel::Scalar, &packed, num_levels, width, &mut levels);
        let mut two_step = vec![0.0f32; n];
        dequantize_levels_on(Kernel::Scalar, &levels, scale, num_levels, &mut two_step);
        prop_assert_eq!(bits_of(&want), bits_of(&two_step), "packed != two-step (scalar)");
        for k in available_kernels() {
            let mut got = vec![0.0f32; n];
            dequantize_packed_on(k, &packed, scale, num_levels, width, &mut got);
            prop_assert_eq!(bits_of(&got), bits_of(&want), "dequantize_packed kernel {}", k.name());
        }
    }

    #[test]
    fn all_finite_matches_scalar(
        (mut x, specials) in (
            prop::collection::vec(-8.0f32..8.0, 0..129),
            prop::collection::vec((0usize..129, 0usize..8), 0..3),
        )
    ) {
        splice(&mut x, &specials);
        let want = all_finite_on(Kernel::Scalar, &x);
        for k in available_kernels() {
            prop_assert_eq!(all_finite_on(k, &x), want, "all_finite kernel {}", k.name());
        }
    }
}

/// Exact-ties regression: the values where round-half-to-even and
/// round-half-away-from-zero disagree. A proptest range rarely lands on
/// exact halves, so pin them explicitly for every tier.
#[test]
fn quantize_ties_round_away_from_zero_on_every_tier() {
    // scale = 8, num_levels = 4 ⇒ t = x / 2, so x = ±1, ±3, ±5, ±7 land
    // exactly on half-integer t where the rounding modes differ.
    let x: Vec<f32> = vec![1.0, -1.0, 3.0, -3.0, 5.0, -5.0, 7.0, -7.0, 8.0, -8.0, 0.5];
    let scale = 8.0f32;
    let num_levels = 4u8;
    let mut want = vec![0i8; x.len()];
    quantize_levels_on(Kernel::Scalar, &x, scale, num_levels, &mut want);
    assert_eq!(want, vec![1, -1, 2, -2, 3, -3, 4, -4, 4, -4, 0]);
    for k in available_kernels() {
        let mut got = vec![0i8; x.len()];
        quantize_levels_on(k, &x, scale, num_levels, &mut got);
        assert_eq!(got, want, "ties diverge on kernel {}", k.name());
    }
}
