//! Parity suite for the packed register-blocked GEMM.
//!
//! Checks every transpose variant against a naive f64 reference over random
//! shapes — including zero dims, non-tile-multiple m/n/k, and degenerate
//! 1×1 / single-row / single-column cases — plus the thread-count-invariance
//! property: the fixed tile schedule must produce the *same bits* no matter
//! how many threads compute the output.

use fedca_tensor::gemm::{
    active_kernel, available_kernels, gemm_acc_with_threads, gemm_acc_with_threads_on, Kernel, KC,
    MR, NR,
};
use fedca_tensor::{ops, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Naive f64-accumulating reference for `op(A)·op(B)`.
fn naive(
    trans_a: bool,
    trans_b: bool,
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
) -> Vec<f32> {
    let mut c = vec![0.0f64; m * n];
    for i in 0..m {
        for j in 0..n {
            for p in 0..k {
                let av = if trans_a { a[p * m + i] } else { a[i * k + p] };
                let bv = if trans_b { b[j * k + p] } else { b[p * n + j] };
                c[i * n + j] += av as f64 * bv as f64;
            }
        }
    }
    c.into_iter().map(|x| x as f32).collect()
}

fn assert_close(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len(), "{ctx}: length");
    for (i, (&x, &y)) in got.iter().zip(want.iter()).enumerate() {
        let tol = 1e-4 * (1.0 + x.abs().max(y.abs()));
        assert!((x - y).abs() <= tol, "{ctx}[{i}]: {x} vs {y}");
    }
}

fn randn(len: usize, rng: &mut StdRng) -> Vec<f32> {
    if len == 0 {
        return Vec::new();
    }
    Tensor::randn([len], 1.0, rng).into_vec()
}

/// Shapes that exercise the interesting structural cases: degenerate 1×1,
/// single row / single column, exact tile multiples, off-by-one around the
/// MR/NR/KC boundaries, and zero dims.
fn structural_shapes() -> Vec<(usize, usize, usize)> {
    vec![
        (1, 1, 1),
        (1, 1, 513),          // long dot product, crosses KC
        (1, 37, 5),           // single output row
        (29, 1, 5),           // single output column
        (MR, NR, 8),          // exactly one tile
        (MR - 1, NR - 1, 3),  // strictly inside one tile
        (MR + 1, NR + 1, 9),  // one past the tile edge
        (3 * MR, 5 * NR, KC), // exact multiples, exact KC
        (17, 13, KC + 7),     // non-multiples, k crosses a KC boundary
        (0, 4, 3),            // zero dims: empty output / empty depth
        (4, 0, 3),
        (4, 3, 0),
    ]
}

#[test]
fn structural_shapes_match_f64_reference_all_variants() {
    let mut rng = StdRng::seed_from_u64(42);
    for (m, n, k) in structural_shapes() {
        for ta in [false, true] {
            for tb in [false, true] {
                let a = randn(m * k, &mut rng);
                let b = randn(k * n, &mut rng);
                let mut c = vec![0.0f32; m * n];
                gemm_acc_with_threads(ta, tb, m, n, k, &a, &b, &mut c, 1);
                let want = naive(ta, tb, m, n, k, &a, &b);
                assert_close(&c, &want, &format!("({m},{n},{k}) ta={ta} tb={tb}"));
            }
        }
    }
}

#[test]
fn thread_count_invariance_on_structural_shapes() {
    let mut rng = StdRng::seed_from_u64(43);
    for (m, n, k) in structural_shapes() {
        let a = randn(m * k, &mut rng);
        let b = randn(k * n, &mut rng);
        let mut c1 = vec![0.0f32; m * n];
        gemm_acc_with_threads(false, false, m, n, k, &a, &b, &mut c1, 1);
        for threads in [2, 4, 5] {
            let mut ct = vec![0.0f32; m * n];
            gemm_acc_with_threads(false, false, m, n, k, &a, &b, &mut ct, threads);
            assert_eq!(c1, ct, "({m},{n},{k}) threads={threads} changed bits");
        }
    }
}

#[test]
fn ops_wrappers_route_through_the_same_kernel() {
    // The Tensor-level wrappers must agree bitwise with the raw engine —
    // they are thin shims, not separate implementations.
    let mut rng = StdRng::seed_from_u64(44);
    let (m, n, k) = (19, 11, 23);
    let a = Tensor::randn([m, k], 1.0, &mut rng);
    let b = Tensor::randn([k, n], 1.0, &mut rng);
    let mut raw = vec![0.0f32; m * n];
    gemm_acc_with_threads(
        false,
        false,
        m,
        n,
        k,
        a.as_slice(),
        b.as_slice(),
        &mut raw,
        1,
    );
    assert_eq!(ops::matmul(&a, &b).as_slice(), &raw[..]);
}

// ---------------------------------------------------------------------------
// Tiered parity: every compiled SIMD tier vs the f64 reference and vs the
// scalar tier, plus per-tier thread bit-invariance. These run on the
// explicit-kernel entry point so one process covers all tiers regardless of
// what the global dispatch latched to.
// ---------------------------------------------------------------------------

#[test]
fn every_tier_matches_f64_reference_on_structural_shapes() {
    let mut rng = StdRng::seed_from_u64(45);
    for (m, n, k) in structural_shapes() {
        for ta in [false, true] {
            for tb in [false, true] {
                let a = randn(m * k, &mut rng);
                let b = randn(k * n, &mut rng);
                let want = naive(ta, tb, m, n, k, &a, &b);
                for kernel in available_kernels() {
                    let mut c = vec![0.0f32; m * n];
                    gemm_acc_with_threads_on(kernel, ta, tb, m, n, k, &a, &b, &mut c, 1);
                    assert_close(
                        &c,
                        &want,
                        &format!("{} ({m},{n},{k}) ta={ta} tb={tb}", kernel.name()),
                    );
                }
            }
        }
    }
}

/// SIMD tiers may fuse multiplies and adds (FMA) but keep the same
/// sequential-k accumulation order, so they must agree with the scalar
/// tier to within FMA rounding — a far tighter bound than the f64 check.
#[test]
fn every_tier_stays_within_fma_rounding_of_scalar() {
    let mut rng = StdRng::seed_from_u64(46);
    for (m, n, k) in structural_shapes() {
        let a = randn(m * k, &mut rng);
        let b = randn(k * n, &mut rng);
        let mut scalar = vec![0.0f32; m * n];
        gemm_acc_with_threads_on(
            Kernel::Scalar,
            false,
            false,
            m,
            n,
            k,
            &a,
            &b,
            &mut scalar,
            1,
        );
        for kernel in available_kernels() {
            let mut c = vec![0.0f32; m * n];
            gemm_acc_with_threads_on(kernel, false, false, m, n, k, &a, &b, &mut c, 1);
            for (i, (&x, &y)) in c.iter().zip(&scalar).enumerate() {
                let tol = 2.0 * f32::EPSILON * (k as f32).max(1.0) * (1.0 + y.abs());
                assert!(
                    (x - y).abs() <= tol,
                    "{} ({m},{n},{k})[{i}]: {x} vs scalar {y}",
                    kernel.name()
                );
            }
        }
    }
}

#[test]
fn every_tier_is_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(47);
    for kernel in available_kernels() {
        for (m, n, k) in structural_shapes() {
            let a = randn(m * k, &mut rng);
            let b = randn(k * n, &mut rng);
            let mut c1 = vec![0.0f32; m * n];
            gemm_acc_with_threads_on(kernel, false, false, m, n, k, &a, &b, &mut c1, 1);
            for threads in [2, 4, 5] {
                let mut ct = vec![0.0f32; m * n];
                gemm_acc_with_threads_on(kernel, false, false, m, n, k, &a, &b, &mut ct, threads);
                assert_eq!(
                    c1,
                    ct,
                    "{} ({m},{n},{k}) threads={threads} changed bits",
                    kernel.name()
                );
            }
        }
    }
}

/// Dispatch sanity: the latched tier is stable, is one of the compiled
/// tiers, and — when `scripts/simd_check.sh` runs this suite with
/// `FEDCA_FORCE_KERNEL` set — matches the forced tier exactly.
#[test]
fn dispatch_is_stable_and_respects_the_force_override() {
    assert!(Kernel::from_name("scalar") == Some(Kernel::Scalar));
    assert!(Kernel::from_name("avx2") == Some(Kernel::Avx2));
    assert!(Kernel::from_name("neon") == Some(Kernel::Neon));
    assert!(Kernel::from_name("sse9").is_none());
    assert!(
        Kernel::from_name("Scalar").is_none(),
        "names are case-sensitive"
    );

    let tiers = available_kernels();
    assert!(tiers.contains(&Kernel::Scalar), "scalar is always compiled");
    let active = active_kernel();
    assert!(tiers.contains(&active), "active tier must be available");
    assert_eq!(active, active_kernel(), "dispatch must latch once");
    if let Ok(forced) = std::env::var("FEDCA_FORCE_KERNEL") {
        assert_eq!(
            active.name(),
            forced,
            "FEDCA_FORCE_KERNEL={forced} but dispatch latched {}",
            active.name()
        );
    }
}

proptest! {
    #[test]
    fn random_shapes_match_f64_reference_on_every_tier(
        m in 0usize..40,
        n in 0usize..40,
        k in 0usize..80,
        ta_bit in 0u8..2,
        tb_bit in 0u8..2,
        seed in 0u64..10_000,
    ) {
        let (ta, tb) = (ta_bit == 1, tb_bit == 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = randn(m * k, &mut rng);
        let b = randn(k * n, &mut rng);
        let want = naive(ta, tb, m, n, k, &a, &b);
        for kernel in available_kernels() {
            let mut c = vec![0.0f32; m * n];
            gemm_acc_with_threads_on(kernel, ta, tb, m, n, k, &a, &b, &mut c, 1);
            for (i, (&x, &y)) in c.iter().zip(want.iter()).enumerate() {
                let tol = 1e-4 * (1.0 + x.abs().max(y.abs()));
                prop_assert!(
                    (x - y).abs() <= tol,
                    "{} [{i}]: {x} vs {y}", kernel.name()
                );
            }
        }
    }

    #[test]
    fn random_shapes_are_thread_count_invariant_on_every_tier(
        m in 1usize..50,
        n in 1usize..30,
        k in 1usize..60,
        threads in 2usize..8,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = randn(m * k, &mut rng);
        let b = randn(k * n, &mut rng);
        for kernel in available_kernels() {
            let mut c1 = vec![0.0f32; m * n];
            gemm_acc_with_threads_on(kernel, false, false, m, n, k, &a, &b, &mut c1, 1);
            let mut ct = vec![0.0f32; m * n];
            gemm_acc_with_threads_on(kernel, false, false, m, n, k, &a, &b, &mut ct, threads);
            prop_assert_eq!(&c1, &ct, "{} changed bits across threads", kernel.name());
        }
    }

    #[test]
    fn random_shapes_match_f64_reference(
        m in 0usize..40,
        n in 0usize..40,
        k in 0usize..80,
        ta_bit in 0u8..2,
        tb_bit in 0u8..2,
        seed in 0u64..10_000,
    ) {
        let (ta, tb) = (ta_bit == 1, tb_bit == 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = randn(m * k, &mut rng);
        let b = randn(k * n, &mut rng);
        let mut c = vec![0.0f32; m * n];
        gemm_acc_with_threads(ta, tb, m, n, k, &a, &b, &mut c, 1);
        let want = naive(ta, tb, m, n, k, &a, &b);
        for (i, (&x, &y)) in c.iter().zip(want.iter()).enumerate() {
            let tol = 1e-4 * (1.0 + x.abs().max(y.abs()));
            prop_assert!((x - y).abs() <= tol, "[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn random_shapes_are_thread_count_invariant(
        m in 1usize..50,
        n in 1usize..30,
        k in 1usize..60,
        threads in 2usize..8,
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = randn(m * k, &mut rng);
        let b = randn(k * n, &mut rng);
        let mut c1 = vec![0.0f32; m * n];
        gemm_acc_with_threads(false, false, m, n, k, &a, &b, &mut c1, 1);
        let mut ct = vec![0.0f32; m * n];
        gemm_acc_with_threads(false, false, m, n, k, &a, &b, &mut ct, threads);
        prop_assert_eq!(c1, ct);
    }
}
