//! Property-based tests for the tensor kernels.

use fedca_tensor::{cosine_similarity, dot, l2_norm, magnitude_similarity, ops, Tensor};
use proptest::prelude::*;

fn vec_f32(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, len)
}

proptest! {
    #[test]
    fn dot_is_symmetric((a, b) in (1usize..64).prop_flat_map(|n| (vec_f32(n), vec_f32(n)))) {
        prop_assert!((dot(&a, &b) - dot(&b, &a)).abs() < 1e-6);
    }

    #[test]
    fn cosine_is_bounded_and_scale_invariant(
        a in vec_f32(17),
        scale in 0.01f32..50.0,
    ) {
        let c = cosine_similarity(&a, &a);
        prop_assert!((-1.0..=1.0).contains(&c));
        let scaled: Vec<f32> = a.iter().map(|x| x * scale).collect();
        let cs = cosine_similarity(&a, &scaled);
        // Either both are (near-)zero vectors, or cosine must be ~1.
        if l2_norm(&a) > 1e-3 {
            prop_assert!((cs - 1.0).abs() < 1e-3, "cos {cs}");
        }
    }

    #[test]
    fn magnitude_similarity_in_unit_interval(a in vec_f32(9), b in vec_f32(9)) {
        let m = magnitude_similarity(&a, &b);
        prop_assert!((0.0..=1.0).contains(&m), "mag {m}");
        prop_assert!((magnitude_similarity(&b, &a) - m).abs() < 1e-7);
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn([m, k], 1.0, &mut rng);
        let b1 = Tensor::randn([k, n], 1.0, &mut rng);
        let b2 = Tensor::randn([k, n], 1.0, &mut rng);
        // A·(B1+B2) == A·B1 + A·B2 (up to f32 rounding)
        let lhs = ops::matmul(&a, &b1.add(&b2));
        let rhs = ops::matmul(&a, &b1).add(&ops::matmul(&a, &b2));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + x.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_transposes_are_consistent(
        m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in 0u64..1000
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn([m, k], 1.0, &mut rng);
        let b = Tensor::randn([k, n], 1.0, &mut rng);
        let c = ops::matmul(&a, &b);
        // (A·B)ᵀ = Bᵀ·Aᵀ: check via the transpose kernels without building
        // explicit transposes: C[i][j] == row_i(A)·col_j(B).
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for kk in 0..k {
                    s += a.at(&[i, kk]) as f64 * b.at(&[kk, j]) as f64;
                }
                prop_assert!((c.at(&[i, j]) as f64 - s).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn axpy_matches_reference(a in vec_f32(23), b in vec_f32(23), alpha in -5.0f32..5.0) {
        let mut t = Tensor::from_vec([23], a.clone());
        let u = Tensor::from_vec([23], b.clone());
        t.axpy(alpha, &u);
        for i in 0..23 {
            let expected = a[i] + alpha * b[i];
            prop_assert!((t.as_slice()[i] - expected).abs() < 1e-4);
        }
    }

    #[test]
    fn reshape_preserves_all_elements(n in 1usize..10, m in 1usize..10) {
        let data: Vec<f32> = (0..n * m).map(|i| i as f32).collect();
        let t = Tensor::from_vec([n, m], data.clone());
        let r = t.reshape([m, n]);
        prop_assert_eq!(r.as_slice(), &data[..]);
    }

    #[test]
    fn argmax_rows_returns_valid_indices(rows in 1usize..6, cols in 1usize..8, seed in 0u64..500) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let t = Tensor::randn([rows, cols], 1.0, &mut rng);
        let am = t.argmax_rows();
        prop_assert_eq!(am.len(), rows);
        for (i, &j) in am.iter().enumerate() {
            prop_assert!(j < cols);
            for jj in 0..cols {
                prop_assert!(t.at(&[i, j]) >= t.at(&[i, jj]));
            }
        }
    }
}
