//! Custom model: plug your own architecture into the FedCA stack.
//!
//! Shows the full path a downstream user takes: build a model with the
//! `fedca-nn` layer API, gradient-check it, wrap it in a custom `Workload`,
//! and train it under FedCA.
//!
//! Run with: `cargo run --release --example custom_model`

use fedca::core::{FlConfig, Scheme, Trainer, Workload};
use fedca::data::synthetic::{image_task, ImageTaskConfig};
use fedca::nn::gradcheck::check_param_grads;
use fedca::nn::layers::{BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d, Relu, Sequential};
use fedca::nn::Model;
use fedca::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// A small custom conv-net: conv → BN → ReLU → pool → fc.
fn build_net(seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    Model::new(
        Sequential::new()
            .push(Conv2d::new("stem", 1, 8, 3, 1, 1, &mut rng))
            .push(BatchNorm2d::new("norm", 8))
            .push(Relu::new())
            .push(MaxPool2d::new(2))
            .push(Flatten::new())
            .push(Linear::new("head", 8 * 6 * 6, 5, &mut rng)),
    )
}

fn main() {
    // --- 1. Gradient-check the architecture before trusting it.
    let mut net = build_net(1);
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::randn([3, 1, 12, 12], 1.0, &mut rng);
    let report = check_param_grads(net.net_mut(), &x, &[0, 1, 2], 1e-3, 20);
    println!(
        "gradcheck: max relative error {:.4} over {} coordinates",
        report.max_rel_err, report.checked
    );
    assert!(report.max_rel_err < 0.05, "custom model backward is wrong");

    // --- 2. Wrap it in a Workload with your own data and system constants.
    let data_cfg = ImageTaskConfig {
        channels: 1,
        hw: 12,
        classes: 5,
        train_samples: 1500,
        test_samples: 300,
        noise: 1.2,
    };
    let (train, test) = image_task(&data_cfg, 33);
    let workload = Workload {
        name: "custom_convnet".into(),
        model_factory: Arc::new(|| build_net(1)),
        train: Arc::new(train),
        test: Arc::new(test),
        iter_work_seconds: 0.08,
        wire_model_bytes: 4.0 * 3000.0, // fp32 on the wire
        target_accuracy: 0.8,
        lr: 0.05,
        weight_decay: 0.001,
        // Not in the registry: sharded execution can't rebuild this
        // workload in a child process, so leave the spec out.
        spec: None,
    };

    // --- 3. Train it under FedCA.
    let fl = FlConfig {
        n_clients: 12,
        clients_per_round: 6,
        local_iters: 15,
        batch_size: 16,
        lr: workload.lr,
        weight_decay: workload.weight_decay,
        seed: 33,
        ..FlConfig::scaled()
    };
    let mut trainer = Trainer::new(fl, Scheme::fedca_default(), workload);
    let out = trainer.run_until_accuracy(0.8, 25);
    match out.time_to_accuracy(0.8) {
        Some((t, round)) => {
            println!("custom model reached 80% accuracy at virtual time {t:.1}s (round {round})")
        }
        None => println!(
            "did not reach 80% in 25 rounds (best {:.3}) — tune lr/noise",
            out.best_accuracy()
        ),
    }
}
