//! Heterogeneous fleet: shows how FedCA's client autonomy copes with a
//! federation of wildly different, *dynamic* devices — the paper's core
//! motivation (§1, §3.1).
//!
//! Builds a fleet with FedScale-like speed spread plus fast/slow toggling,
//! runs FedAvg / FedAda / FedCA, and reports round-time statistics and
//! where clients autonomously cut their local work.
//!
//! Run with: `cargo run --release --example heterogeneous_fleet`

use fedca::core::{FlConfig, Scheme, Trainer, Workload};
use fedca::sim::device::{DeviceSpeed, DynamicsConfig};

fn main() {
    // --- Part 1: what device dynamicity looks like.
    println!("== one dynamic device (paper's gamma-toggling model) ==");
    let mut dev = DeviceSpeed::new(1.0, DynamicsConfig::paper(), 4);
    let mut t = 0.0;
    for seg in 0..6 {
        let end = dev.execute(t, 10.0); // 10 nominal seconds of work
        println!(
            "  work chunk {seg}: 10 nominal s took {:5.1} virtual s (speed ~{:.2}x)",
            end - t,
            10.0 / (end - t)
        );
        t = end;
    }

    // --- Part 2: three schemes on the same heterogeneous fleet.
    println!("\n== FedAvg vs FedAda vs FedCA under heterogeneity + dynamicity ==");
    let workload = Workload::tiny_mlp(21);
    let fl = FlConfig {
        n_clients: 24,
        clients_per_round: 8,
        local_iters: 25,
        batch_size: 8,
        lr: workload.lr,
        weight_decay: workload.weight_decay,
        seed: 21,
        heterogeneity: true,
        dynamicity: true,
        ..FlConfig::scaled()
    };

    for scheme in [
        Scheme::FedAvg,
        Scheme::fedada_default(),
        Scheme::fedca_default(),
    ] {
        let name = scheme.name();
        let mut trainer = Trainer::new(fl.clone(), scheme, workload.clone());
        let out = trainer.run(15);
        let durations: Vec<f64> = out.rounds.iter().map(|r| r.duration()).collect();
        let mean = durations.iter().sum::<f64>() / durations.len() as f64;
        let max = durations.iter().cloned().fold(0.0, f64::max);
        let total_iters: usize = out.rounds.iter().flat_map(|r| r.iters_done.iter()).sum();
        let n_reports: usize = out.rounds.iter().map(|r| r.iters_done.len()).sum();
        println!(
            "  {:8} mean round {:7.2}s  worst round {:7.2}s  mean iters/client {:5.1}/{}  best acc {:.3}",
            name,
            mean,
            max,
            total_iters as f64 / n_reports as f64,
            fl.local_iters,
            out.best_accuracy()
        );
    }
    println!(
        "\nFedCA cuts the tail rounds: stragglers stop early instead of dragging the deadline."
    );
}
