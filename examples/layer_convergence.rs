//! Layer convergence: profiles one client's anchor round and prints
//! per-layer statistical-progress curves — the phenomenon behind FedCA's
//! eager transmission (paper Fig. 3: layers converge at different paces,
//! some crossing T_e = 0.95 long before round end).
//!
//! Run with: `cargo run --release --example layer_convergence`

use fedca::core::client::{run_client_round, ClientOptions, ClientState, RoundPlan};
use fedca::core::executor::ClientArena;
use fedca::core::params::ModelLayout;
use fedca::core::profiler::SampledProfiler;
use fedca::core::{FedCaOptions, FlConfig, Workload};
use fedca::data::BatchSampler;
use fedca::sim::device::{DeviceSpeed, DynamicsConfig};
use fedca::sim::network::Link;
use fedca_compress::ErrorFeedback;
use std::sync::Arc;

fn main() {
    let workload = Workload::cnn(fedca::core::workload::Scale::Scaled, 11);
    let mut arena = ClientArena::from_model((workload.model_factory)());
    let layout = Arc::new(ModelLayout::from_spans(arena.model.spans()));
    let global = arena.model.flat_params();

    let shard: Vec<usize> = (0..600).collect();
    let mut client = ClientState {
        id: 0,
        shard: shard.clone(),
        sampler: BatchSampler::new(shard, 16),
        device: DeviceSpeed::new(1.0, DynamicsConfig::static_device(), 1),
        uplink: Link::paper_client(),
        downlink: Link::paper_client(),
        profiler: SampledProfiler::new(layout.clone(), 100, 3),
        seed: 5,
        participations: 0,
        error_feedback: ErrorFeedback::new(),
    };
    let fl = FlConfig {
        lr: workload.lr,
        weight_decay: workload.weight_decay,
        batch_size: 16,
        ..FlConfig::scaled()
    };
    let opts = ClientOptions {
        prox_mu: 0.0,
        fedca: Some(FedCaOptions::v3()),
    };
    let k = 40;
    let plan = RoundPlan {
        round: 0,
        start: 0.0,
        deadline: 1e9,
        planned_iters: k,
        is_anchor: true,
        faults: Default::default(),
    };
    println!("profiling a {k}-iteration anchor round on the CNN workload…");
    let report = run_client_round(
        &mut client,
        &mut arena,
        &layout,
        &global,
        &workload.train,
        &workload,
        &fl,
        &opts,
        &plan,
    );
    assert_eq!(report.iters_done, k);

    let curves = client.profiler.curves().expect("anchor profiled");
    println!(
        "\nsampled {} parameters ({} bytes of profiling memory for K={k})",
        client.profiler.sampled_param_count(),
        client.profiler.memory_bytes(k),
    );
    println!("\nper-layer statistical progress (P_i at selected iterations):");
    println!(
        "{:28} {:>6} {:>6} {:>6} {:>6}  first iter with P ≥ 0.95",
        "layer", "i=5", "i=10", "i=20", "i=40"
    );
    for (l, curve) in curves.layers.iter().enumerate() {
        let cross = curve
            .iter()
            .position(|&p| p >= 0.95)
            .map(|i| (i + 1).to_string())
            .unwrap_or_else(|| "never".into());
        println!(
            "{:28} {:6.3} {:6.3} {:6.3} {:6.3}  {}",
            layout.name(l),
            curve[4],
            curve[9],
            curve[19],
            curve[39],
            cross
        );
    }
    let early = curves
        .layers
        .iter()
        .filter(|c| c.iter().position(|&p| p >= 0.95).is_some_and(|i| i + 1 < k))
        .count();
    println!(
        "\n{early}/{} layers stabilize before round end -> candidates for eager transmission.",
        curves.layers.len()
    );
}
