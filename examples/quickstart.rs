//! Quickstart: train a small federation with FedAvg and FedCA and compare
//! round times, plus a Fig.-1-style illustration of the statistical
//! progress metric on a toy gradient accumulation.
//!
//! Run with: `cargo run --release --example quickstart`

use fedca::core::progress::{progress_curve, statistical_progress};
use fedca::core::{FlConfig, Scheme, Trainer, Workload};

fn main() {
    // --- Part 1: the statistical-progress metric on a toy accumulation
    // (the paper's Fig. 1: 7 iterations whose early steps dominate).
    println!("== statistical progress on a toy 7-iteration round ==");
    let dir = [1.0f32, 0.8, -0.5, 0.3];
    // Diminishing step sizes, like SGD approaching a local optimum.
    let steps = [0.5f32, 0.25, 0.12, 0.06, 0.04, 0.02, 0.01];
    let mut acc = vec![0.0f32; 4];
    let mut snapshots = Vec::new();
    for s in steps {
        for (a, d) in acc.iter_mut().zip(dir.iter()) {
            *a += s * d;
        }
        snapshots.push(acc.clone());
    }
    let curve = progress_curve(&snapshots);
    for (i, p) in curve.iter().enumerate() {
        println!("  after iteration {}: P = {:.3}", i + 1, p);
    }
    println!(
        "  -> after 3 of 7 iterations the accumulated gradient already has P = {:.3}",
        curve[2]
    );
    assert!((statistical_progress(&snapshots[6], &snapshots[6]) - 1.0).abs() < 1e-6);

    // --- Part 2: a real (small) federation, FedAvg vs FedCA.
    println!("\n== FedAvg vs FedCA on a small federation ==");
    let workload = Workload::tiny_mlp(7);
    let fl = FlConfig {
        n_clients: 16,
        clients_per_round: 6,
        local_iters: 20,
        batch_size: 8,
        lr: workload.lr,
        weight_decay: workload.weight_decay,
        seed: 7,
        ..FlConfig::scaled()
    };

    for scheme in [Scheme::FedAvg, Scheme::fedca_default()] {
        let name = scheme.name();
        let mut trainer = Trainer::new(fl.clone(), scheme, workload.clone());
        let out = trainer.run(12);
        println!(
            "  {:8} mean round time {:7.2}s  best accuracy {:.3}  (virtual time {:.1}s)",
            name,
            out.mean_round_time(),
            out.best_accuracy(),
            out.rounds.last().map(|r| r.end).unwrap_or(0.0),
        );
        if name == "FedCA" {
            let stops: usize = out
                .rounds
                .iter()
                .map(|r| r.early_stops.iter().filter(|&&s| s).count())
                .sum();
            let eager: usize = out.rounds.iter().map(|r| r.eager_events.len()).sum();
            let retrans: usize = out
                .rounds
                .iter()
                .flat_map(|r| &r.eager_events)
                .filter(|e| e.retransmitted)
                .count();
            println!(
                "           {stops} early stops, {eager} eager layer transmissions ({retrans} retransmitted)"
            );
        }
    }
    println!("\nDone. See crates/bench/src/bin for the paper's full experiment set.");
}
