#!/usr/bin/env bash
# Fixed-seed chaos sweep: runs the fault-injection harness
# (crates/core/tests/chaos.rs) across N deterministic seeds in release
# mode. The sweep is fully reproducible — seeds are 0..N-1 and every fault
# schedule is a pure function of (fault seed, round, client).
#
# Usage: scripts/chaos.sh [N_SEEDS]   (default 32, the acceptance width)
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${1:-32}"

echo "== chaos sweep: ${SEEDS} seeds x 3 fault mixes (release)"
FEDCA_CHAOS_SEEDS="${SEEDS}" cargo test -p fedca-core --test chaos --release -q
