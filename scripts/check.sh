#!/usr/bin/env bash
# Repo-wide hygiene gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

if cargo clippy --version >/dev/null 2>&1; then
  echo "== cargo clippy -D warnings"
  cargo clippy --workspace --all-targets -- -D warnings
else
  echo "== cargo clippy not installed; skipping lints" >&2
fi

echo "== cargo test"
cargo test --workspace -q

echo "== chaos sweep"
scripts/chaos.sh "${CHAOS_SEEDS:-32}"

echo "== trace check"
scripts/trace_check.sh

echo "== recovery check"
scripts/recovery_check.sh

echo "== perf check"
scripts/perf_check.sh

echo "== simd check"
scripts/simd_check.sh

echo "== dataplane check"
scripts/dataplane_check.sh

echo "== population check"
scripts/population_check.sh

echo "== shard check"
scripts/shard_check.sh

echo "== transport check"
scripts/transport_check.sh
