#!/usr/bin/env bash
# Server data-plane gate, three halves:
#
#  1. Correctness: runs the data-plane kernel parity suite AND the
#     wire-vs-dense aggregation equivalence suite once per kernel tier the
#     host can execute, with FEDCA_FORCE_KERNEL pinning the dispatch — so
#     every compiled tier proves bit-identity to the scalar reference
#     (codecs) and to the historical dense fold (aggregator).
#
#  2. Speedup: on hosts with a SIMD tier, the fused dequantize-accumulate
#     median must beat the scalar decode-then-axpy baseline
#     (data_plane/unfused_scalar in the same bench run) by at least
#     DATAPLANE_MIN_SPEEDUP x (default 2.0), less a
#     DATAPLANE_SPEEDUP_TOLERANCE (default 10%) noise band. Scalar-only
#     hosts skip this half with a note.
#
#  3. Regression band: every data_plane bench median is compared against
#     its recorded baseline in BENCH_dataplane.json (`after_us`); a median
#     more than DATAPLANE_MAX_REGRESSION (default 30%) above baseline
#     fails the gate.
#
# Usage: scripts/dataplane_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_SPEEDUP="${DATAPLANE_MIN_SPEEDUP:-2.0}"
TOLERANCE="${DATAPLANE_SPEEDUP_TOLERANCE:-10}"
MAX_REG="${DATAPLANE_MAX_REGRESSION:-30}"
BASELINE="BENCH_dataplane.json"

# -- which tiers can this host run? (mirrors Kernel::is_available)
TIERS="scalar"
ARCH="$(uname -m)"
if [[ "$ARCH" == "x86_64" ]] && grep -q avx2 /proc/cpuinfo && grep -q fma /proc/cpuinfo; then
  TIERS="avx2 scalar"
elif [[ "$ARCH" == "aarch64" || "$ARCH" == "arm64" ]]; then
  TIERS="neon scalar"
fi
echo "== dataplane_check: host tiers: $TIERS"

FAIL=0
for TIER in $TIERS; do
  echo "== data-plane parity suite (FEDCA_FORCE_KERNEL=$TIER)"
  if ! FEDCA_FORCE_KERNEL="$TIER" cargo test -q -p fedca-tensor --test dataplane_parity; then
    echo "dataplane_check: kernel parity suite failed on tier $TIER" >&2
    FAIL=1
  fi
  echo "== wire-vs-dense aggregation equivalence (FEDCA_FORCE_KERNEL=$TIER)"
  if ! FEDCA_FORCE_KERNEL="$TIER" cargo test -q -p fedca-core \
    --test aggregation_equivalence --test ingest_zero_alloc; then
    echo "dataplane_check: aggregation equivalence failed on tier $TIER" >&2
    FAIL=1
  fi
done

echo "== data_plane benches (release, auto-dispatched tier)"
OUT="$(cargo bench -p fedca-bench --bench data_plane 2>&1 | tee /dev/stderr)"

# Extracts the median of one bench line from $OUT, in microseconds.
median_us() {
  local line
  line="$(grep -F "bench $1 " <<<"$OUT" || true)"
  [[ -z "$line" ]] && return 1
  local median unit
  read -r median unit <<<"$(sed -E 's/.*time:\s*\[[0-9.]+ [a-zµ]+ ([0-9.]+) ([a-zµ]+) .*/\1 \2/' <<<"$line")"
  case "$unit" in
    ns) awk "BEGIN{print $median / 1000}" ;;
    µs | us) echo "$median" ;;
    ms) awk "BEGIN{print $median * 1000}" ;;
    s) awk "BEGIN{print $median * 1000000}" ;;
    *) return 1 ;;
  esac
}

if [[ "$TIERS" == "scalar" ]]; then
  echo "dataplane_check: no SIMD tier on this host; skipping the fused speedup gate"
else
  FUSED="$(median_us "data_plane/fused_dequant_axpy/500k" || true)"
  UNFUSED="$(median_us "data_plane/unfused_scalar/500k" || true)"
  if [[ -z "$FUSED" || -z "$UNFUSED" ]]; then
    echo "dataplane_check: missing fused/unfused measurements" >&2
    FAIL=1
  else
    FLOOR="$(awk "BEGIN{print $MIN_SPEEDUP * (1 - $TOLERANCE / 100)}")"
    SPEEDUP="$(awk "BEGIN{print $UNFUSED / $FUSED}")"
    if awk "BEGIN{exit !($SPEEDUP < $FLOOR)}"; then
      echo "dataplane_check: fused ${FUSED} µs is only ${SPEEDUP}x the scalar unfused ${UNFUSED} µs (floor ${FLOOR}x)" >&2
      FAIL=1
    else
      echo "dataplane_check: fused ${FUSED} µs — ${SPEEDUP}x vs scalar unfused ${UNFUSED} µs (floor ${FLOOR}x) — ok"
    fi
  fi
fi

# Scalar-only hosts compare against the recorded scalar-tier medians.
KEY="after_us"
[[ "$TIERS" == "scalar" ]] && KEY="scalar_us"
for NAME in $(jq -r '.benchmarks | keys[]' "$BASELINE"); do
  BASE_US="$(jq -r ".benchmarks[\"$NAME\"].$KEY" "$BASELINE")"
  US="$(median_us "$NAME" || true)"
  if [[ -z "$US" ]]; then
    echo "dataplane_check: no measurement for $NAME" >&2
    FAIL=1
    continue
  fi
  LIMIT="$(awk "BEGIN{print $BASE_US * (1 + $MAX_REG / 100)}")"
  if awk "BEGIN{exit !($US > $LIMIT)}"; then
    echo "dataplane_check: $NAME at ${US} µs exceeds ${LIMIT} µs (baseline ${BASE_US} µs + ${MAX_REG}%)" >&2
    FAIL=1
  else
    echo "dataplane_check: $NAME ${US} µs (baseline ${BASE_US} µs, limit ${LIMIT} µs) — ok"
  fi
done

exit "$FAIL"
