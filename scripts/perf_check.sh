#!/usr/bin/env bash
# Kernel-perf regression gate (mirrors trace_check.sh):
#   re-runs the training-iteration and round-orchestration benches in
#   release mode and compares each median against the recorded baseline in
#   BENCH_kernels.json (`after_ms`). A median more than PERF_MAX_REGRESSION
#   (default 20%) above its baseline fails the gate.
#
# Benchmark noise on shared CI machines is real; the 20% band is meant to
# catch "the kernel fell off a cliff" (an accidental O(n^3) naive path, a
# lost pack-buffer reuse), not single-digit jitter.
#
# Usage: scripts/perf_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_REG="${PERF_MAX_REGRESSION:-20}"
BASELINE="BENCH_kernels.json"

echo "== kernel benches (release)"
OUT="$(cargo bench -p fedca-bench --bench training_iteration --bench round_orchestration 2>&1 | tee /dev/stderr)"

FAIL=0
for NAME in $(jq -r '.benchmarks | keys[]' "$BASELINE"); do
  BASE_MS="$(jq -r ".benchmarks[\"$NAME\"].after_ms" "$BASELINE")"
  LINE="$(grep -F "bench $NAME " <<<"$OUT" || true)"
  if [[ -z "$LINE" ]]; then
    echo "perf_check: no measurement for $NAME" >&2
    FAIL=1
    continue
  fi
  # criterion prints "time: [low median high]"; take the median + unit.
  read -r MEDIAN UNIT <<<"$(sed -E 's/.*time:\s*\[[0-9.]+ [a-zµ]+ ([0-9.]+) ([a-zµ]+) .*/\1 \2/' <<<"$LINE")"
  case "$UNIT" in
    ns) MS="$(awk "BEGIN{print $MEDIAN / 1000000}")" ;;
    µs | us) MS="$(awk "BEGIN{print $MEDIAN / 1000}")" ;;
    ms) MS="$MEDIAN" ;;
    s) MS="$(awk "BEGIN{print $MEDIAN * 1000}")" ;;
    *)
      echo "perf_check: $NAME median has unknown unit '$UNIT'" >&2
      FAIL=1
      continue
      ;;
  esac
  LIMIT="$(awk "BEGIN{print $BASE_MS * (1 + $MAX_REG / 100)}")"
  if awk "BEGIN{exit !($MS > $LIMIT)}"; then
    echo "perf_check: $NAME at ${MS} ms exceeds ${LIMIT} ms (baseline ${BASE_MS} ms + ${MAX_REG}%)" >&2
    FAIL=1
  else
    echo "perf_check: $NAME ${MS} ms (baseline ${BASE_MS} ms, limit ${LIMIT} ms) — ok"
  fi
done

exit "$FAIL"
