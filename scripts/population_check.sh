#!/usr/bin/env bash
# Virtual-population gate (mirrors perf_check.sh):
#   1. runs the eager-vs-lazy parity suite in release mode — the lazy
#      client store must be bit-identical to materializing everyone;
#   2. runs the `population` probe once per pinned size (one process per
#      size: peak RSS is process-monotone) and compares throughput and
#      peak memory against BENCH_population.json.
#
# Throughput is gated from below and memory from above, each with a
# POPULATION_MAX_REGRESSION (default 30%) band — wide enough for shared-CI
# jitter, tight enough to catch "hydration went quadratic" or "the store
# stopped evicting" (at a million clients the latter is ~100x the memory
# baseline, not 30%).
#
# Usage: scripts/population_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_REG="${POPULATION_MAX_REGRESSION:-30}"
BASELINE="BENCH_population.json"

echo "== population parity suite (release)"
cargo test --release -q -p fedca-core --test population_parity

echo "== population scaling probe (release)"
cargo build --release -q -p fedca-bench --bin population

FAIL=0
for N in $(jq -r '.populations | keys[]' "$BASELINE"); do
  OUT="$(./target/release/population --n-clients "$N" --cohort 128 --rounds 50 2>/dev/null)"
  RPS="$(jq -r '.rounds_per_sec' <<<"$OUT")"
  RSS="$(jq -r '.peak_rss_mib' <<<"$OUT")"
  BASE_RPS="$(jq -r ".populations[\"$N\"].rounds_per_sec" "$BASELINE")"
  BASE_RSS="$(jq -r ".populations[\"$N\"].peak_rss_mib" "$BASELINE")"

  RPS_FLOOR="$(awk "BEGIN{print $BASE_RPS * (1 - $MAX_REG / 100)}")"
  if awk "BEGIN{exit !($RPS < $RPS_FLOOR)}"; then
    echo "population_check: n=$N at ${RPS} rounds/s below floor ${RPS_FLOOR} (baseline ${BASE_RPS} - ${MAX_REG}%)" >&2
    FAIL=1
  else
    echo "population_check: n=$N ${RPS} rounds/s (baseline ${BASE_RPS}, floor ${RPS_FLOOR}) — ok"
  fi

  RSS_CEIL="$(awk "BEGIN{print $BASE_RSS * (1 + $MAX_REG / 100)}")"
  if awk "BEGIN{exit !($RSS > $RSS_CEIL)}"; then
    echo "population_check: n=$N peak RSS ${RSS} MiB exceeds ${RSS_CEIL} MiB (baseline ${BASE_RSS} + ${MAX_REG}%)" >&2
    FAIL=1
  else
    echo "population_check: n=$N peak RSS ${RSS} MiB (baseline ${BASE_RSS}, ceiling ${RSS_CEIL}) — ok"
  fi
done

exit "$FAIL"
