#!/usr/bin/env bash
# Durability regression gate: a release study killed with SIGKILL at a
# deterministic point must resume from its newest on-disk generation and
# finish with output byte-identical to an uninterrupted run.
#
#   1. reference run of a bench study (no checkpointing);
#   2. doomed run with --checkpoint-dir, SIGKILLed right after generation 2
#      (kill-at-a-round determinism: generations are written once per
#      completed round, so "gen 2 exists" pins the kill in round space);
#   3. resumed run with --resume on the same directory;
#   4. byte-level diff of the CSV outputs — bit-identical recovery.
#
# The in-process counterpart (kill at *every* round, plus corruption
# fallback) is crates/core/tests/checkpoint_resume.rs.
#
# Usage: scripts/recovery_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=ext_dropout
export FEDCA_SCALE=smoke FEDCA_SEED=7
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
CKPT="$WORK/ckpt"
GEN2="$CKPT/checkpoint-000002.ckpt"

echo "== recovery check: building $BIN (release)"
cargo build --release -q -p fedca-bench --bin "$BIN"

echo "== reference run (uninterrupted, no checkpointing)"
"target/release/$BIN" >"$WORK/reference.csv" 2>"$WORK/reference.log"

echo "== doomed run (SIGKILL once generation 2 lands)"
set +e
"target/release/$BIN" --checkpoint-dir "$CKPT" \
  >"$WORK/doomed.csv" 2>"$WORK/doomed.log" &
PID=$!
for _ in $(seq 1 1200); do
  [ -f "$GEN2" ] && break
  kill -0 "$PID" 2>/dev/null || break
  sleep 0.05
done
kill -9 "$PID" 2>/dev/null
wait "$PID" 2>/dev/null
set -e
if [ ! -f "$GEN2" ]; then
  echo "recovery_check: doomed run never wrote generation 2 (died early?)" >&2
  sed -n '1,20p' "$WORK/doomed.log" >&2
  exit 1
fi

echo "== resumed run (--resume from $CKPT)"
"target/release/$BIN" --checkpoint-dir "$CKPT" --resume \
  >"$WORK/resumed.csv" 2>"$WORK/resumed.log"

if ! grep -q "resumed from" "$WORK/resumed.log"; then
  echo "recovery_check: the resumed run never engaged a checkpoint" >&2
  sed -n '1,20p' "$WORK/resumed.log" >&2
  exit 1
fi

echo "== diff: resumed output vs uninterrupted reference"
if ! diff -u "$WORK/reference.csv" "$WORK/resumed.csv"; then
  echo "recovery_check: resumed output diverges from the reference" >&2
  exit 1
fi
echo "recovery_check: kill -9 + resume is byte-identical — ok"
