#!/usr/bin/env bash
# Regenerates every table/figure of the FedCA paper plus this repository's
# extension experiments. FEDCA_SCALE=smoke|scaled|paper selects the tier
# (default scaled; see EXPERIMENTS.md).
set -euo pipefail
cd "$(dirname "$0")/.."
scale="${FEDCA_SCALE:-scaled}"
out="results/${scale}"
mkdir -p "$out"
cargo build --release -p fedca-bench
bins=(overhead fig8_cdf fig10_sensitivity fig9_ablation table1 fig7_time_to_accuracy
      fig2_progress_clients fig3_progress_layers fig5_sampling fig4_round_similarity
      ext_compression ext_adaptive_batch ext_dropout)
for b in "${bins[@]}"; do
    echo "== $b ($(date +%H:%M:%S))"
    FEDCA_SCALE="$scale" "./target/release/$b" > "$out/$b.csv" 2> "$out/$b.log"
done
echo "done; CSVs in $out/"
