#!/usr/bin/env bash
# Sharded-execution gate (mirrors population_check.sh):
#   1. runs the topology-invariance suite in release mode — every topology
#      in {1, 2, 4} shard processes x {1, 4} workers must be bit-identical
#      to the in-process run (records, parameters, canonical trace), under
#      chaos faults, compression, and randomized shard assignments;
#   2. runs the `shard` probe at 1 and 4 shard processes on the wrn
#      workload: the parameter fingerprints must match exactly (release-
#      mode topology invariance on a real workload), per-topology
#      throughput must hold a SHARD_MAX_REGRESSION (default 30%) band
#      against BENCH_shard.json, and the 4-shard run must clear the
#      speedup gate.
#
# The speedup gate is core-aware: with >= 4 usable cores the 4-shard
# topology must deliver SHARD_MIN_SPEEDUP (default 1.5x) the 1-shard round
# throughput; on fewer cores a parallel speedup is physically impossible
# (the compute serializes either way), so the gate becomes an overhead
# bound — 4 shards must keep >= 0.6x of the 1-shard throughput, proving
# the protocol and process plumbing stay cheap.
#
# Usage: scripts/shard_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

MAX_REG="${SHARD_MAX_REGRESSION:-30}"
BASELINE="BENCH_shard.json"
CORES="$(nproc 2>/dev/null || echo 1)"
if [ "$CORES" -ge 4 ]; then
  MIN_SPEEDUP="${SHARD_MIN_SPEEDUP:-1.5}"
else
  MIN_SPEEDUP="${SHARD_MIN_SPEEDUP:-0.6}"
  echo "shard_check: $CORES core(s) — speedup gate degrades to the ${MIN_SPEEDUP}x overhead bound" >&2
fi

echo "== topology-invariance suite (release)"
cargo test --release -q -p fedca-core --test shard_parity
cargo test --release -q -p fedca-core --test shard_api

echo "== shard throughput probe (release, wrn)"
cargo build --release -q -p fedca-bench --bin shard

FAIL=0
declare -A RPS FP
for S in 1 4; do
  OUT="$(./target/release/shard --shards "$S" --workers 1 --rounds 6 --workload wrn 2>/dev/null)"
  RPS[$S]="$(jq -r '.rounds_per_sec' <<<"$OUT")"
  FP[$S]="$(jq -r '.params_fingerprint' <<<"$OUT")"
  BASE_RPS="$(jq -r ".topologies[\"$S\"].rounds_per_sec" "$BASELINE")"
  RPS_FLOOR="$(awk "BEGIN{print $BASE_RPS * (1 - $MAX_REG / 100)}")"
  if awk "BEGIN{exit !(${RPS[$S]} < $RPS_FLOOR)}"; then
    echo "shard_check: $S shards at ${RPS[$S]} rounds/s below floor ${RPS_FLOOR} (baseline ${BASE_RPS} - ${MAX_REG}%)" >&2
    FAIL=1
  else
    echo "shard_check: $S shards ${RPS[$S]} rounds/s (baseline ${BASE_RPS}, floor ${RPS_FLOOR}) — ok"
  fi
done

if [ "${FP[1]}" != "${FP[4]}" ]; then
  echo "shard_check: parameter fingerprints diverged across topologies: 1 shard ${FP[1]} vs 4 shards ${FP[4]}" >&2
  FAIL=1
else
  echo "shard_check: topology-invariant fingerprint ${FP[1]} — ok"
fi

SPEEDUP="$(awk "BEGIN{print ${RPS[4]} / ${RPS[1]}}")"
if awk "BEGIN{exit !($SPEEDUP < $MIN_SPEEDUP)}"; then
  echo "shard_check: 4-shard speedup ${SPEEDUP}x below the ${MIN_SPEEDUP}x gate ($CORES cores)" >&2
  FAIL=1
else
  echo "shard_check: 4-shard speedup ${SPEEDUP}x (gate ${MIN_SPEEDUP}x, $CORES cores) — ok"
fi

exit "$FAIL"
