#!/usr/bin/env bash
# SIMD dispatch gate, two halves:
#
#  1. Correctness: runs the tiered GEMM parity suite once per kernel tier
#     the host can execute, with FEDCA_FORCE_KERNEL pinning the dispatch —
#     so the scalar fallback stays exercised on SIMD hardware and every
#     compiled tier proves f64-reference accuracy, scalar-proximity, and
#     thread-count bit-stability.
#
#  2. Performance: on hosts with a SIMD tier, re-runs the train_iteration
#     benches and requires each median to beat the packed scalar kernel
#     baseline (packed_ms in BENCH_kernels.json) by at least
#     SIMD_MIN_SPEEDUP x (default 2.0), less a SIMD_SPEEDUP_TOLERANCE
#     (default 10%) noise band: effective floor 1.8x by default. The scalar
#     tier only reaches ~1.3x of packed_ms on these shapes, so the band
#     still distinguishes "dispatch silently fell back to scalar" from
#     bench jitter. Scalar-only hosts skip this half with a note.
#
# Usage: scripts/simd_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

MIN_SPEEDUP="${SIMD_MIN_SPEEDUP:-2.0}"
TOLERANCE="${SIMD_SPEEDUP_TOLERANCE:-10}"
BASELINE="BENCH_kernels.json"

# -- which tiers can this host run? (mirrors Kernel::is_available)
TIERS="scalar"
ARCH="$(uname -m)"
if [[ "$ARCH" == "x86_64" ]] && grep -q avx2 /proc/cpuinfo && grep -q fma /proc/cpuinfo; then
  TIERS="avx2 scalar"
elif [[ "$ARCH" == "aarch64" || "$ARCH" == "arm64" ]]; then
  TIERS="neon scalar"
fi
echo "== simd_check: host tiers: $TIERS"

FAIL=0
for TIER in $TIERS; do
  echo "== gemm parity suite (FEDCA_FORCE_KERNEL=$TIER)"
  if ! FEDCA_FORCE_KERNEL="$TIER" cargo test -q -p fedca-tensor --test gemm_parity; then
    echo "simd_check: parity suite failed on tier $TIER" >&2
    FAIL=1
  fi
done

if [[ "$TIERS" == "scalar" ]]; then
  echo "simd_check: no SIMD tier on this host; skipping the speedup gate"
  exit "$FAIL"
fi

echo "== train_iteration benches (release, auto-dispatched tier)"
OUT="$(cargo bench -p fedca-bench --bench training_iteration 2>&1 | tee /dev/stderr)"

FLOOR="$(awk "BEGIN{print $MIN_SPEEDUP * (1 - $TOLERANCE / 100)}")"
for NAME in $(jq -r '.benchmarks | keys[] | select(startswith("train_iteration/"))' "$BASELINE"); do
  PACKED_MS="$(jq -r ".benchmarks[\"$NAME\"].packed_ms" "$BASELINE")"
  LINE="$(grep -F "bench $NAME " <<<"$OUT" || true)"
  if [[ -z "$LINE" ]]; then
    echo "simd_check: no measurement for $NAME" >&2
    FAIL=1
    continue
  fi
  # criterion prints "time: [low median high]"; take the median + unit.
  read -r MEDIAN UNIT <<<"$(sed -E 's/.*time:\s*\[[0-9.]+ [a-zµ]+ ([0-9.]+) ([a-zµ]+) .*/\1 \2/' <<<"$LINE")"
  case "$UNIT" in
    ns) MS="$(awk "BEGIN{print $MEDIAN / 1000000}")" ;;
    µs | us) MS="$(awk "BEGIN{print $MEDIAN / 1000}")" ;;
    ms) MS="$MEDIAN" ;;
    s) MS="$(awk "BEGIN{print $MEDIAN * 1000}")" ;;
    *)
      echo "simd_check: $NAME median has unknown unit '$UNIT'" >&2
      FAIL=1
      continue
      ;;
  esac
  SPEEDUP="$(awk "BEGIN{print $PACKED_MS / $MS}")"
  if awk "BEGIN{exit !($SPEEDUP < $FLOOR)}"; then
    echo "simd_check: $NAME at ${MS} ms is only ${SPEEDUP}x the packed baseline ${PACKED_MS} ms (floor ${FLOOR}x)" >&2
    FAIL=1
  else
    echo "simd_check: $NAME ${MS} ms — ${SPEEDUP}x vs packed ${PACKED_MS} ms (floor ${FLOOR}x) — ok"
  fi
done

exit "$FAIL"
