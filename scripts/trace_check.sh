#!/usr/bin/env bash
# Trace-layer regression gate:
#   1. the golden-trace suite in release mode — the canonical event stream
#      must stay byte-identical to the committed fixture, across reruns,
#      and across 1-vs-4 worker pools;
#   2. the determinism/serde companions (executor API, profiler sampling,
#      serde round-trips) that pin the journal's contracts;
#   3. the trace_overhead benches as an overhead-regression guard: a
#      disabled tracer must cost low-single-digit nanoseconds per emit call
#      (the zero-cost claim), enforced against TRACE_EMIT_DISABLED_MAX_NS
#      (default 25 ns, generous for slow CI machines).
#
# Usage: scripts/trace_check.sh [--skip-bench]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== golden trace + determinism suites (release)"
cargo test -p fedca-core --release -q \
  --test golden_trace \
  --test executor_api \
  --test profiler_determinism \
  --test serde_roundtrip

if [[ "${1:-}" == "--skip-bench" ]]; then
  echo "== trace_overhead bench skipped (--skip-bench)"
  exit 0
fi

echo "== trace_overhead bench (overhead-regression guard)"
MAX_NS="${TRACE_EMIT_DISABLED_MAX_NS:-25}"
OUT="$(cargo bench -p fedca-bench --bench profiler_overhead -- trace_overhead 2>&1 | tee /dev/stderr)"

# The disabled-emit median must stay within the zero-cost budget.
LINE="$(grep "trace_overhead/emit_disabled" <<<"$OUT" || true)"
if [[ -z "$LINE" ]]; then
  echo "trace_check: emit_disabled bench produced no measurement" >&2
  exit 1
fi
# criterion prints "time: [low median high]"; take the median + unit.
read -r MEDIAN UNIT <<<"$(sed -E 's/.*time:\s*\[[0-9.]+ [a-zµ]+ ([0-9.]+) ([a-zµ]+) .*/\1 \2/' <<<"$LINE")"
case "$UNIT" in
  ps) NS="$(awk "BEGIN{print $MEDIAN / 1000}")" ;;
  ns) NS="$MEDIAN" ;;
  µs | us) NS="$(awk "BEGIN{print $MEDIAN * 1000}")" ;;
  *)
    echo "trace_check: emit_disabled median is ${MEDIAN} ${UNIT} — not nanoseconds; regression" >&2
    exit 1
    ;;
esac
if awk "BEGIN{exit !($NS > $MAX_NS)}"; then
  echo "trace_check: disabled-tracer emit costs ${NS} ns (> ${MAX_NS} ns budget)" >&2
  exit 1
fi
echo "trace_check: disabled-tracer emit ${NS} ns (budget ${MAX_NS} ns) — ok"
