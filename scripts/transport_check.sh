#!/usr/bin/env bash
# Transport-supervision gate (mirrors shard_check.sh):
#   1. runs the transport-chaos suite in release mode with a 32-seed
#      sweep (override via FEDCA_CHAOS_SEEDS) — byte-level drop /
#      duplicate / reorder / delay / corruption schedules on every
#      coordinator<->shard link, rotated across the {1, 2, 4} shards x
#      {1, 4} workers matrix, plus a 100% loss run that must quarantine
#      the shards, re-execute their ordinals locally, and still be
#      bit-identical to the fault-free in-process run;
#   2. runs the `shard` probe on wrn with and without a chaotic
#      transport schedule: the parameter fingerprints must match exactly
#      (release-mode trajectory neutrality on a real workload), and the
#      chaotic run must report injected retries (proving the schedule
#      actually exercised the resend path).
#
# Usage: scripts/transport_check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

SEEDS="${FEDCA_CHAOS_SEEDS:-32}"
FAULT_SEED="${FEDCA_TRANSPORT_FAULT_SEED:-7}"

echo "== transport-chaos suite (release, $SEEDS seeds)"
FEDCA_CHAOS_SEEDS="$SEEDS" cargo test --release -q -p fedca-core --test shard_transport

echo "== shard probe with vs without transport chaos (release, wrn)"
cargo build --release -q -p fedca-bench --bin shard

FAIL=0
CLEAN="$(./target/release/shard --shards 2 --workers 1 --rounds 4 --workload wrn 2>/dev/null)"
CHAOS="$(./target/release/shard --shards 2 --workers 1 --rounds 4 --workload wrn \
  --transport-faults "$FAULT_SEED" 2>/dev/null)"

FP_CLEAN="$(jq -r '.params_fingerprint' <<<"$CLEAN")"
FP_CHAOS="$(jq -r '.params_fingerprint' <<<"$CHAOS")"
RETRIES="$(jq -r '.n_retries' <<<"$CHAOS")"
QUARANTINED="$(jq -r '.n_quarantined' <<<"$CHAOS")"
REASSIGNED="$(jq -r '.n_reassigned' <<<"$CHAOS")"

if [ "$FP_CLEAN" != "$FP_CHAOS" ]; then
  echo "transport_check: fingerprint diverged under chaos seed $FAULT_SEED: clean $FP_CLEAN vs chaotic $FP_CHAOS" >&2
  FAIL=1
else
  echo "transport_check: chaos-invariant fingerprint $FP_CLEAN (seed $FAULT_SEED) — ok"
fi

if [ "$RETRIES" -eq 0 ]; then
  echo "transport_check: chaotic run reported zero retries — fault schedule inert?" >&2
  FAIL=1
else
  echo "transport_check: $RETRIES retries, $QUARANTINED quarantined, $REASSIGNED reassigned under chaos — ok"
fi

exit "$FAIL"
