//! # fedca
//!
//! Umbrella crate for the FedCA reproduction ([Lyu et al., ICPP '24],
//! <https://doi.org/10.1145/3673038.3673049>): re-exports the workspace
//! crates under one roof and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! ## Quickstart
//!
//! ```
//! use fedca::core::{FlConfig, Scheme, Trainer, Workload};
//!
//! let fl = FlConfig {
//!     n_clients: 8,
//!     clients_per_round: 4,
//!     local_iters: 6,
//!     batch_size: 8,
//!     lr: 0.05,
//!     weight_decay: 0.0,
//!     seed: 7,
//!     ..FlConfig::scaled()
//! };
//! let mut trainer = Trainer::new(fl, Scheme::fedca_default(), Workload::tiny_mlp(7));
//! let out = trainer.run(2);
//! assert_eq!(out.rounds.len(), 2);
//! assert!(out.rounds[1].end > out.rounds[0].end);
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

/// FedCA core: the paper's mechanism, baselines, and experiment driver.
pub use fedca_core as core;
/// Federated datasets (synthetic tasks, Dirichlet partitioning).
pub use fedca_data as data;
/// Neural-network substrate (layers, models, SGD).
pub use fedca_nn as nn;
/// Virtual-time testbed (devices, links, round arithmetic).
pub use fedca_sim as sim;
/// Dense tensor substrate.
pub use fedca_tensor as tensor;
