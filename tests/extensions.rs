//! Integration tests for the repository's extensions beyond the paper's
//! §4 mechanisms: availability churn (§3.1), the §6 future-work autonomous
//! batch-size adaptation, and the §2.2 compression baselines wired through
//! the binary codec.

use fedca::core::{FedCaOptions, FlConfig, Scheme, Trainer, Workload};
use fedca_compress::wire::{decode, encode, Payload, UpdateMessage};
use fedca_compress::{dequantize, quantize, top_k, Compression, ErrorFeedback};

fn fl(seed: u64) -> FlConfig {
    FlConfig {
        n_clients: 12,
        clients_per_round: 6,
        local_iters: 12,
        batch_size: 8,
        lr: 0.05,
        weight_decay: 0.0,
        aggregation_fraction: 0.8,
        dirichlet_alpha: 0.3,
        seed,
        heterogeneity: true,
        dynamicity: true,
        dropout_prob: 0.0,
        compression: Default::default(),
        faults: Default::default(),
        trace: Default::default(),
        checkpoint: Default::default(),
        population: Default::default(),
        shard: Default::default(),
    }
}

#[test]
fn dropout_clients_never_reach_the_server() {
    let mut cfg = fl(1);
    cfg.dropout_prob = 0.4;
    let mut t = Trainer::new(cfg, Scheme::FedAvg, Workload::tiny_mlp(1));
    let out = t.run(10);
    let total_dropped: usize = out.rounds.iter().map(|r| r.n_dropped).sum();
    assert!(total_dropped > 0, "40% dropout never fired in 10 rounds");
    for r in &out.rounds {
        // Dropped clients are excluded from aggregation.
        assert!(
            r.n_aggregated <= r.n_selected - r.n_dropped,
            "round {}: aggregated {} with {} dropped of {}",
            r.round,
            r.n_aggregated,
            r.n_dropped,
            r.n_selected
        );
        // The round still completes at a finite time.
        assert!(r.end.is_finite() && r.end > r.start);
    }
    // Training still makes progress despite the churn.
    assert!(out.best_accuracy() > 0.5, "best {}", out.best_accuracy());
}

#[test]
fn dropout_free_runs_are_unaffected_by_the_feature_flag() {
    let a = Trainer::new(fl(2), Scheme::FedAvg, Workload::tiny_mlp(2)).run(5);
    let mut cfg = fl(2);
    cfg.dropout_prob = 0.0;
    let b = Trainer::new(cfg, Scheme::FedAvg, Workload::tiny_mlp(2)).run(5);
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.end, rb.end);
        assert_eq!(ra.n_dropped, 0);
        assert_eq!(rb.n_dropped, 0);
    }
}

#[test]
fn adaptive_batch_extension_runs_and_keeps_learning() {
    let scheme = Scheme::FedCa(FedCaOptions::v3().with_adaptive_batch(2));
    let mut t = Trainer::new(fl(3), scheme, Workload::tiny_mlp(3));
    let out = t.run(12);
    assert!(
        out.best_accuracy() > 0.5,
        "adaptive-batch FedCA failed to learn: {}",
        out.best_accuracy()
    );
    // The extension must not break determinism.
    let scheme2 = Scheme::FedCa(FedCaOptions::v3().with_adaptive_batch(2));
    let out2 = Trainer::new(fl(3), scheme2, Workload::tiny_mlp(3)).run(12);
    for (a, b) in out.rounds.iter().zip(&out2.rounds) {
        assert_eq!(a.end, b.end);
    }
}

#[test]
fn quantized_update_transport_round_trips_through_the_codec() {
    // Simulate the client->server path with 4-bit quantization: the decoded
    // update must be within one quantization step of the original.
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let update: Vec<f32> = (0..2048)
        .map(|i| ((i as f32) * 0.013).sin() * 0.1)
        .collect();
    let q = quantize(&update, 4, &mut rng);
    let msg = UpdateMessage {
        round: 5,
        client: 3,
        layers: vec![(0, Payload::Quantized(q.clone()))],
    };
    let bytes = encode(&msg);
    // 4-bit payload (packed in 5 bits/elem) must be far below fp32.
    assert!(
        (bytes.len() as f64) < update.len() as f64 * 4.0 * 0.3,
        "quantized message too large: {}",
        bytes.len()
    );
    let back = decode(&bytes).expect("decodes");
    let decoded = back.layers[0].1.to_dense();
    let step = q.scale / q.num_levels as f32;
    for (a, b) in update.iter().zip(&decoded) {
        assert!((a - b).abs() <= step + 1e-6);
    }
    // And matches the direct dequantization exactly.
    assert_eq!(decoded, dequantize(&q));
}

#[test]
fn compression_wire_bytes_match_codec_reality_within_headers() {
    let v: Vec<f32> = (0..10_000).map(|i| (i as f32 * 0.7).cos()).collect();
    // Top-k estimate vs actual encoded size.
    let keep = 0.1;
    let s = top_k(&v, keep);
    let msg = UpdateMessage {
        round: 0,
        client: 0,
        layers: vec![(0, Payload::Sparse(s))],
    };
    let actual = encode(&msg).len() as f64;
    let estimate = Compression::TopK { keep }.wire_bytes(v.len());
    assert!(
        (actual - estimate).abs() / estimate < 0.05,
        "estimate {estimate} vs actual {actual}"
    );
}

#[test]
fn error_feedback_preserves_information_across_rounds() {
    // Compressing with top-10% + error feedback: after many rounds the
    // cumulative transmitted signal approaches the cumulative true signal.
    // A persistent per-coordinate signal: without error feedback, top-10%
    // would transmit only the 26 largest coordinates forever and lose the
    // rest entirely; with it, the residual forces every coordinate through
    // eventually.
    let n = 256;
    let base: Vec<f32> = (0..n)
        .map(|i| 0.02 + (i as f32 * 0.37).sin().abs() * 0.05)
        .collect();
    let rounds = 60;
    let mut ef = ErrorFeedback::new();
    let mut total_sent = vec![0.0f32; n];
    let mut naive_sent = vec![0.0f32; n];
    for _ in 0..rounds {
        let mut compensated = base.clone();
        ef.apply(&mut compensated);
        let sent = fedca_compress::densify(&top_k(&compensated, 0.1));
        for (t, v) in total_sent.iter_mut().zip(&sent) {
            *t += v;
        }
        ef.absorb(&compensated, &sent);
        // Naive baseline without feedback.
        for (t, v) in naive_sent
            .iter_mut()
            .zip(fedca_compress::densify(&top_k(&base, 0.1)))
        {
            *t += v;
        }
    }
    let total_true: Vec<f32> = base.iter().map(|v| v * rounds as f32).collect();
    let rel_err = |sent: &[f32]| {
        let err: f32 = total_true
            .iter()
            .zip(sent)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt();
        let norm: f32 = total_true.iter().map(|v| v * v).sum::<f32>().sqrt();
        err / norm
    };
    let with_ef = rel_err(&total_sent);
    let without_ef = rel_err(&naive_sent);
    assert!(
        with_ef < 0.15,
        "error feedback still lost {:.0}% of the signal",
        with_ef * 100.0
    );
    assert!(
        without_ef > 3.0 * with_ef,
        "feedback ({with_ef:.3}) should beat naive top-k ({without_ef:.3}) decisively"
    );
}
