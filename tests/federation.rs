//! Cross-crate integration tests: end-to-end federations exercising the
//! whole stack (tensor → nn → data → sim → core).

use fedca::core::{FedCaOptions, FlConfig, Scheme, Trainer, Workload};

fn tiny_fl(seed: u64) -> FlConfig {
    FlConfig {
        n_clients: 12,
        clients_per_round: 5,
        local_iters: 10,
        batch_size: 8,
        lr: 0.05,
        weight_decay: 0.0,
        aggregation_fraction: 0.9,
        dirichlet_alpha: 0.3,
        seed,
        heterogeneity: true,
        dynamicity: true,
        dropout_prob: 0.0,
        compression: Default::default(),
        faults: Default::default(),
        trace: Default::default(),
        checkpoint: Default::default(),
        population: Default::default(),
        shard: Default::default(),
    }
}

#[test]
fn fedavg_end_to_end_learns_the_tiny_task() {
    let mut t = Trainer::new(tiny_fl(1), Scheme::FedAvg, Workload::tiny_mlp(1));
    let initial = t.evaluate();
    let out = t.run(20);
    assert!(
        out.best_accuracy() > initial + 0.3,
        "no end-to-end learning: {initial} -> {}",
        out.best_accuracy()
    );
    // Virtual time strictly increases and rounds are complete records.
    for w in out.rounds.windows(2) {
        assert!(w[1].start >= w[0].end - 1e-9);
        assert!(w[1].end > w[1].start);
    }
}

#[test]
fn all_four_schemes_run_and_learn() {
    for scheme in [
        Scheme::FedAvg,
        Scheme::fedprox_default(),
        Scheme::fedada_default(),
        Scheme::fedca_default(),
    ] {
        let name = scheme.name();
        let mut t = Trainer::new(tiny_fl(2), scheme, Workload::tiny_mlp(2));
        let out = t.run(12);
        assert!(
            out.best_accuracy() > 0.5,
            "{name} failed to learn (best {})",
            out.best_accuracy()
        );
    }
}

#[test]
fn fedca_is_faster_per_round_than_fedavg_under_stragglers() {
    // Same federation, same workload, same seed: FedCA's early stopping +
    // eager transmission must cut mean round time (the paper's headline).
    let w = Workload::tiny_mlp(3);
    let mut avg = Trainer::new(tiny_fl(3), Scheme::FedAvg, w.clone());
    let mut ca = Trainer::new(tiny_fl(3), Scheme::fedca_default(), w);
    let out_avg = avg.run(12);
    let out_ca = ca.run(12);
    // Skip anchor rounds (unoptimized by design) when comparing.
    let mean = |o: &fedca::core::TrainerOutput, skip_anchor: bool| {
        let rs: Vec<_> = o
            .rounds
            .iter()
            .filter(|r| !(skip_anchor && r.is_anchor))
            .collect();
        rs.iter().map(|r| r.duration()).sum::<f64>() / rs.len() as f64
    };
    let t_avg = mean(&out_avg, false);
    let t_ca = mean(&out_ca, true);
    assert!(
        t_ca < t_avg,
        "FedCA rounds ({t_ca:.2}s) not faster than FedAvg ({t_avg:.2}s)"
    );
}

#[test]
fn fedca_triggers_both_mechanisms() {
    let mut t = Trainer::new(tiny_fl(4), Scheme::fedca_default(), Workload::tiny_mlp(4));
    let out = t.run(15);
    let stops: usize = out
        .rounds
        .iter()
        .map(|r| r.early_stops.iter().filter(|&&s| s).count())
        .sum();
    let eager: usize = out.rounds.iter().map(|r| r.eager_events.len()).sum();
    assert!(stops > 0, "early stopping never fired in 15 rounds");
    assert!(eager > 0, "eager transmission never fired in 15 rounds");
    // Anchor rounds never early-stop or eagerly transmit.
    for r in out.rounds.iter().filter(|r| r.is_anchor && r.round == 0) {
        assert!(r.early_stops.iter().all(|&s| !s));
        assert!(r.eager_events.is_empty());
    }
}

#[test]
fn partial_aggregation_drops_at_most_the_straggler_fraction() {
    let mut t = Trainer::new(tiny_fl(5), Scheme::FedAvg, Workload::tiny_mlp(5));
    let out = t.run(8);
    for r in &out.rounds {
        let min_collected = ((r.n_selected as f64) * 0.9).ceil() as usize;
        assert!(
            r.n_aggregated >= min_collected,
            "round {}: aggregated {} of {}",
            r.round,
            r.n_aggregated,
            r.n_selected
        );
    }
}

#[test]
fn identical_seeds_identical_outcomes_despite_threading() {
    // Clients run on real concurrent threads; the virtual clock must make
    // the run bit-identical anyway.
    let run = |seed| {
        let mut t = Trainer::new(
            tiny_fl(seed),
            Scheme::fedca_default(),
            Workload::tiny_mlp(6),
        );
        t.run(6)
    };
    let a = run(7);
    let b = run(7);
    assert_eq!(a.rounds.len(), b.rounds.len());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.end.to_bits(), rb.end.to_bits(), "round {}", ra.round);
        assert_eq!(ra.accuracy, rb.accuracy);
        assert_eq!(ra.iters_done, rb.iters_done);
        assert_eq!(ra.eager_events.len(), rb.eager_events.len());
    }
    let c = run(8);
    assert!(
        a.rounds
            .iter()
            .zip(&c.rounds)
            .any(|(x, y)| x.end != y.end || x.accuracy != y.accuracy),
        "different seeds produced identical runs"
    );
}

#[test]
fn fedca_v2_without_retransmission_can_diverge_statistically() {
    // v2 reports stale eager snapshots with no error feedback; v3 repairs
    // them. Over enough rounds v3's accuracy must be at least v2's (allowing
    // noise), and v3 must actually retransmit sometimes when the threshold
    // is strict.
    let w = Workload::tiny_mlp(9);
    let mut opts = FedCaOptions::v3();
    opts.config.retransmit_threshold = 0.95; // strict: force retransmissions
    let mut t3 = Trainer::new(tiny_fl(9), Scheme::FedCa(opts), w.clone());
    let out3 = t3.run(15);
    let retrans: usize = out3
        .rounds
        .iter()
        .flat_map(|r| &r.eager_events)
        .filter(|e| e.retransmitted)
        .count();
    assert!(
        retrans > 0,
        "strict T_r never triggered a retransmission in 15 rounds"
    );
}

#[test]
fn fedada_reduces_planned_iterations_for_stragglers() {
    let mut t = Trainer::new(
        tiny_fl(10),
        Scheme::fedada_default(),
        Workload::tiny_mlp(10),
    );
    let out = t.run(10);
    // After the server learns durations, some straggler should be throttled.
    let any_reduced = out
        .rounds
        .iter()
        .skip(2)
        .any(|r| r.iters_planned.iter().any(|&k| k < 10));
    assert!(any_reduced, "FedAda never adapted workloads");
    // And planned iterations are always respected by clients (no early stop
    // mechanism in FedAda).
    for r in &out.rounds {
        for (done, planned) in r.iters_done.iter().zip(&r.iters_planned) {
            assert_eq!(done, planned);
        }
    }
}
