//! Integration tests of FedCA's individual mechanisms across crate
//! boundaries: profiling fidelity, eager-transmission overlap on the
//! network model, and error-feedback repair with injected divergence.

use fedca::core::client::{run_client_round, ClientOptions, ClientState, RoundPlan};
use fedca::core::eager::LayerOutcome;
use fedca::core::executor::ClientArena;
use fedca::core::params::ModelLayout;
use fedca::core::profiler::SampledProfiler;
use fedca::core::{FedCaOptions, FlConfig, Workload};
use fedca::data::BatchSampler;
use fedca::sim::device::{DeviceSpeed, DynamicsConfig};
use fedca::sim::network::Link;
use fedca_compress::ErrorFeedback;
use std::sync::Arc;

fn client_for(w: &Workload, id: usize, layout: &Arc<ModelLayout>) -> ClientState {
    let shard: Vec<usize> = (0..w.train.len().min(400)).collect();
    ClientState {
        id,
        shard: shard.clone(),
        sampler: BatchSampler::new(shard, 8),
        device: DeviceSpeed::new(1.0, DynamicsConfig::static_device(), 10 + id as u64),
        uplink: Link::paper_client(),
        downlink: Link::paper_client(),
        profiler: SampledProfiler::new(layout.clone(), 100, 20 + id as u64),
        seed: 30 + id as u64,
        participations: 0,
        error_feedback: ErrorFeedback::new(),
    }
}

fn fl_for(w: &Workload) -> FlConfig {
    FlConfig {
        lr: w.lr,
        weight_decay: w.weight_decay,
        batch_size: 8,
        ..FlConfig::scaled()
    }
}

/// Runs an anchor round followed by a normal round; returns (client, model,
/// layout, global, reports of both rounds).
fn two_rounds(
    w: &Workload,
    opts: &ClientOptions,
    k: usize,
    deadline: f64,
) -> (
    ClientState,
    Vec<fedca::core::client::ClientRoundReport>,
    Arc<ModelLayout>,
) {
    let mut arena = ClientArena::from_model((w.model_factory)());
    let layout = Arc::new(ModelLayout::from_spans(arena.model.spans()));
    let global = arena.model.flat_params();
    let mut client = client_for(w, 0, &layout);
    let fl = fl_for(w);
    let anchor_plan = RoundPlan {
        round: 0,
        start: 0.0,
        deadline: 1e9,
        planned_iters: k,
        is_anchor: true,
        faults: Default::default(),
    };
    let r0 = run_client_round(
        &mut client,
        &mut arena,
        &layout,
        &global,
        &w.train,
        w,
        &fl,
        opts,
        &anchor_plan,
    );
    let start = r0.upload_done;
    let plan = RoundPlan {
        round: 1,
        start,
        deadline,
        planned_iters: k,
        is_anchor: false,
        faults: Default::default(),
    };
    let r1 = run_client_round(
        &mut client,
        &mut arena,
        &layout,
        &global,
        &w.train,
        w,
        &fl,
        opts,
        &plan,
    );
    (client, vec![r0, r1], layout)
}

#[test]
fn profiled_curves_are_monotone_ish_and_end_at_one() {
    let w = Workload::tiny_mlp(40);
    let opts = ClientOptions {
        prox_mu: 0.0,
        fedca: Some(FedCaOptions::v3()),
    };
    let (client, _, _) = two_rounds(&w, &opts, 12, 1e9);
    let curves = client.profiler.curves().expect("profiled");
    assert_eq!(curves.k, 12);
    assert!((curves.model.last().unwrap() - 1.0).abs() < 1e-5);
    for layer in &curves.layers {
        assert!((layer.last().unwrap() - 1.0).abs() < 1e-5);
        // Real SGD curves wobble, but the overall trend must be upward:
        // the final value exceeds the first.
        assert!(layer.last().unwrap() >= &layer[0]);
    }
}

#[test]
fn eager_transmissions_overlap_with_compute_on_the_uplink() {
    let w = Workload::cnn(fedca::core::workload::Scale::Scaled, 41);
    let mut opts_cfg = FedCaOptions::v3();
    opts_cfg.early_stop = false; // isolate eager behaviour
    opts_cfg.config.eager_threshold = 0.90;
    let opts = ClientOptions {
        prox_mu: 0.0,
        fedca: Some(opts_cfg),
    };
    let (client, reports, _) = two_rounds(&w, &opts, 25, 1e9);
    let r1 = &reports[1];
    let eager_layers = r1
        .eager_outcomes
        .iter()
        .filter(|o| !matches!(o, LayerOutcome::Regular))
        .count();
    assert!(eager_layers > 0, "no eager transmissions at T_e=0.90");
    // The uplink log must show transfers that STARTED before compute ended
    // (that's the overlap the mechanism exists for).
    let overlapping = client
        .uplink
        .log()
        .iter()
        .filter(|t| t.start < r1.compute_done && t.ready > r1.download_done)
        .count();
    assert!(
        overlapping > 0,
        "eager transfers did not overlap with compute"
    );
}

#[test]
fn eager_without_divergence_shrinks_the_final_payload() {
    let w = Workload::cnn(fedca::core::workload::Scale::Scaled, 42);
    // Baseline: plain FedAvg-style client (everything in the final upload).
    let baseline_opts = ClientOptions::default();
    let (_, base_reports, _) = two_rounds(&w, &baseline_opts, 25, 1e9);
    let base_upload_gap = base_reports[1].upload_done - base_reports[1].compute_done;

    let mut cfg = FedCaOptions::v3();
    cfg.early_stop = false;
    cfg.config.eager_threshold = 0.90;
    let opts = ClientOptions {
        prox_mu: 0.0,
        fedca: Some(cfg),
    };
    let (_, reports, _) = two_rounds(&w, &opts, 25, 1e9);
    let eager_upload_gap = reports[1].upload_done - reports[1].compute_done;
    assert!(
        eager_upload_gap < base_upload_gap,
        "eager transmission did not shorten the critical-path upload: {eager_upload_gap:.3}s vs {base_upload_gap:.3}s"
    );
}

#[test]
fn retransmission_repairs_reported_updates() {
    // With retransmission ON, every reported layer must be either the final
    // update or a snapshot that is cosine-similar to it (≥ T_r). With it
    // OFF, stale snapshots are reported as-is.
    let w = Workload::cnn(fedca::core::workload::Scale::Scaled, 43);
    let mut cfg = FedCaOptions::v3();
    cfg.early_stop = false;
    cfg.config.eager_threshold = 0.5; // aggressively early => stale snapshots
    cfg.config.retransmit_threshold = 0.9; // strict check
    let opts = ClientOptions {
        prox_mu: 0.0,
        fedca: Some(cfg.clone()),
    };
    let (_, reports, layout) = two_rounds(&w, &opts, 25, 1e9);
    let r1 = &reports[1];
    let any_retrans = r1
        .eager_outcomes
        .iter()
        .any(|o| matches!(o, LayerOutcome::Retransmitted { .. }));
    // With such an aggressive eager threshold on a 25-iteration round, at
    // least one layer should have drifted enough to need repair.
    assert!(any_retrans, "no retransmission at T_e=0.5, T_r=0.9");
    for l in 0..layout.num_layers() {
        match &r1.eager_outcomes[l] {
            LayerOutcome::Eager { .. } => {
                // Accepted snapshot: must satisfy the similarity bound.
                // (The update vec holds the snapshot; we can't recompute the
                // final update here, but resolve() guaranteed cos ≥ T_r.)
            }
            LayerOutcome::Regular | LayerOutcome::Retransmitted { .. } => {
                // Reported update is the final one by construction.
            }
        }
    }
}

#[test]
fn early_stop_reacts_to_injected_slowdown() {
    // A device that collapses to 1/5 speed mid-round under a realistic
    // deadline: FedCA stops; plain FedAvg grinds through all iterations.
    let w = Workload::tiny_mlp(44);
    let k = 30;
    let seed_model = (w.model_factory)();
    let layout = Arc::new(ModelLayout::from_spans(seed_model.spans()));
    let global = seed_model.flat_params();
    let fl = fl_for(&w);

    let run = |fedca: Option<FedCaOptions>| {
        let mut client = client_for(&w, 9, &layout);
        // Slow device: base speed 0.2 (always 5x slower than nominal).
        client.device = DeviceSpeed::new(0.2, DynamicsConfig::static_device(), 77);
        let opts = ClientOptions {
            prox_mu: 0.0,
            fedca: fedca.clone(),
        };
        let mut arena = ClientArena::from_model((w.model_factory)());
        let anchor = RoundPlan {
            round: 0,
            start: 0.0,
            deadline: 1e9,
            planned_iters: k,
            is_anchor: true,
            faults: Default::default(),
        };
        let r0 = run_client_round(
            &mut client,
            &mut arena,
            &layout,
            &global,
            &w.train,
            &w,
            &fl,
            &opts,
            &anchor,
        );
        // Deadline sized for a nominal-speed client: k * iter_work + slack.
        let deadline = k as f64 * w.iter_work_seconds * 1.5;
        let plan = RoundPlan {
            round: 1,
            start: r0.upload_done,
            deadline,
            planned_iters: k,
            is_anchor: false,
            faults: Default::default(),
        };
        run_client_round(
            &mut client,
            &mut arena,
            &layout,
            &global,
            &w.train,
            &w,
            &fl,
            &opts,
            &plan,
        )
    };
    let fedca_report = run(Some(FedCaOptions::v1()));
    let fedavg_report = run(None);
    assert_eq!(fedavg_report.iters_done, k);
    assert!(
        fedca_report.early_stopped && fedca_report.iters_done < k,
        "FedCA did not stop a 5x-slow client (did {} iters)",
        fedca_report.iters_done
    );
    assert!(fedca_report.upload_done < fedavg_report.upload_done);
}

#[test]
fn anchor_memory_matches_sampling_rule() {
    // Paper §5.5: CNN profiling samples 618 scalars. Our LeNet-5 naming and
    // shapes reproduce that count exactly at paper scale.
    let w = Workload::cnn(fedca::core::workload::Scale::Paper, 45);
    let model = (w.model_factory)();
    let layout = Arc::new(ModelLayout::from_spans(model.spans()));
    let prof = SampledProfiler::new(layout, 100, 1);
    assert_eq!(prof.sampled_param_count(), 618);
    // 125-iteration anchor at 4 bytes/sample: ~0.3 MB, "negligible".
    assert!(prof.memory_bytes(125) < 1_000_000);
}
