//! Offline shim for the `bytes` 1.x API subset this workspace uses:
//! [`Bytes`]/[`BytesMut`] as growable byte buffers with a read cursor, and
//! the [`Buf`]/[`BufMut`] little-endian accessors the wire codec calls.
//! No zero-copy reference counting — `freeze` simply transfers the Vec.

/// Read-side cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Reads one byte.
    fn get_u8(&mut self) -> u8;
    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;
    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;
    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;
    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32;
    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);
}

/// Write-side byte sink.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);
    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);
    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);
    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);
    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32);
    /// Appends a byte slice.
    fn put_slice(&mut self, s: &[u8]);
}

/// An immutable byte buffer with an internal read position.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Wraps a vector.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }

    /// Copies a slice.
    pub fn copy_from_slice(s: &[u8]) -> Self {
        Bytes {
            data: s.to_vec(),
            pos: 0,
        }
    }

    /// Copies a static slice (the shim has no zero-copy path).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }

    /// Copies a sub-range (indices are relative to the full buffer).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        Bytes {
            data: self.data[range].to_vec(),
            pos: 0,
        }
    }

    /// Copies out the full contents.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Total length (including already-consumed bytes).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer was created empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The unread tail.
    pub fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.pos + n <= self.data.len(), "buffer underflow");
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        s
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_vec(data)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn advance(&mut self, n: usize) {
        assert!(self.pos + n <= self.data.len(), "buffer underflow");
        self.pos += n;
    }
}

/// A growable byte buffer for encoding.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.data)
    }

    /// Appends `n` zero bytes and returns the newly appended region, so
    /// fixed-size encodings can be written in place instead of byte by byte.
    pub fn put_zeroed(&mut self, n: usize) -> &mut [u8] {
        let start = self.data.len();
        self.data.resize(start + n, 0);
        &mut self.data[start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, s: &[u8]) {
        self.data.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u16_le(0x1234);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        w.put_f32_le(1.5);
        w.put_slice(&[1, 2, 3]);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 8 + 4 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.get_f32_le(), 1.5);
        r.advance(2);
        assert_eq!(r.get_u8(), 3);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::copy_from_slice(&[1]);
        let _ = b.get_u32_le();
    }
}
