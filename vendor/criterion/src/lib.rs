//! Offline shim for the `criterion` 0.5 API subset this workspace uses.
//!
//! Provides the same harness surface — [`Criterion`], benchmark groups,
//! [`BenchmarkId`], `criterion_group!`/`criterion_main!`, [`black_box`] —
//! with a simple mean-of-samples timer instead of criterion's statistical
//! machinery: each benchmark is warmed up for `warm_up_time`, then timed
//! for `sample_size` samples spread over `measurement_time`, and the
//! mean/min/max time per iteration is printed to stdout.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Benchmark harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Total time budget for the timed samples.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up duration before sampling.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Criterion's post-run hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A named set of parameterized benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks one parameter value of the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        run_bench(self.criterion, &name, &mut |b| f(b, input));
        self
    }

    /// Benchmarks an unparameterized function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id: BenchmarkId = id.into();
        let name = format!("{}/{}", self.name, id.0);
        run_bench(self.criterion, &name, &mut f);
        self
    }

    /// Ends the group (no-op; reports are printed as benchmarks run).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id naming only the parameter value.
    pub fn from_parameter(p: impl std::fmt::Display) -> Self {
        BenchmarkId(p.to_string())
    }

    /// An id with a function name and parameter value.
    pub fn new(name: impl std::fmt::Display, p: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{p}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    /// Iterations per timed sample (chosen during warm-up).
    iters_per_sample: u64,
    /// Mean nanoseconds per iteration over all samples, filled by `iter`.
    samples_ns: Vec<f64>,
    mode: BenchMode,
}

enum BenchMode {
    /// Calibrating: find an iteration count that fills a sample slot.
    Warmup { budget: Duration },
    /// Timing `samples` samples.
    Measure { samples: usize },
}

impl Bencher {
    /// Times the routine, following the warm-up/measure protocol.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            BenchMode::Warmup { budget } => {
                // Double the iteration count until one batch takes at least
                // ~1/8 of the warm-up budget, so sample batches are long
                // enough to time reliably.
                let mut iters: u64 = 1;
                let started = Instant::now();
                loop {
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        black_box(routine());
                    }
                    let elapsed = t0.elapsed();
                    if elapsed >= budget / 8 || started.elapsed() >= budget {
                        self.iters_per_sample = iters.max(1);
                        return;
                    }
                    iters = iters.saturating_mul(2);
                }
            }
            BenchMode::Measure { samples } => {
                for _ in 0..samples {
                    let t0 = Instant::now();
                    for _ in 0..self.iters_per_sample {
                        black_box(routine());
                    }
                    let ns = t0.elapsed().as_nanos() as f64 / self.iters_per_sample as f64;
                    self.samples_ns.push(ns);
                }
            }
        }
    }
}

fn run_bench<F>(config: &Criterion, name: &str, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut warmup = Bencher {
        iters_per_sample: 1,
        samples_ns: Vec::new(),
        mode: BenchMode::Warmup {
            budget: config.warm_up_time,
        },
    };
    f(&mut warmup);

    // Spread the measurement budget across the requested samples: shrink
    // the per-sample iteration count if the warm-up estimate would blow
    // through `measurement_time`.
    let sample_budget = config.measurement_time.as_nanos() as f64 / config.sample_size as f64;
    let warm_iters = warmup.iters_per_sample;
    let est_per_iter = (config.warm_up_time.as_nanos() as f64 / 8.0) / warm_iters as f64;
    let fitted = (sample_budget / est_per_iter.max(1.0)) as u64;
    let mut bench = Bencher {
        iters_per_sample: fitted.clamp(1, warm_iters.saturating_mul(8)),
        samples_ns: Vec::new(),
        mode: BenchMode::Measure {
            samples: config.sample_size,
        },
    };
    f(&mut bench);

    if bench.samples_ns.is_empty() {
        println!("bench {name:<50} (no samples)");
        return;
    }
    let n = bench.samples_ns.len() as f64;
    let mean = bench.samples_ns.iter().sum::<f64>() / n;
    let min = bench
        .samples_ns
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let max = bench
        .samples_ns
        .iter()
        .cloned()
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "bench {name:<50} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_produces_samples() {
        let mut c = Criterion::default()
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(10));
        c.bench_function("smoke/sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
        let mut g = c.benchmark_group("group");
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>());
        });
        g.finish();
    }

    #[test]
    fn format_scales() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(12_000_000_000.0).contains('s'));
    }
}
