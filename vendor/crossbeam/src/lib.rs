//! Offline shim for the `crossbeam` 0.8 API subset this workspace uses:
//! [`scope`] with `Scope::spawn`, delegating to `std::thread::scope`.
//!
//! Semantics match the call sites' expectations: spawned threads may borrow
//! the enclosing stack frame, the scope joins them all before returning,
//! and a child panic surfaces as `Err` from [`scope`].

use std::any::Any;

/// A scope handle passed to [`scope`]'s closure and to each spawned thread.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives the scope (crossbeam
    /// convention) so it can spawn further work.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Runs `f` with a scope in which borrowed threads can be spawned; joins all
/// of them before returning. Returns `Err` with the first child panic
/// payload, if any.
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_borrowing_threads() {
        let data = [1u64, 2, 3, 4];
        let mut partial = vec![0u64; 2];
        scope(|s| {
            for (out, chunk) in partial.iter_mut().zip(data.chunks(2)) {
                s.spawn(move |_| {
                    *out = chunk.iter().sum::<u64>();
                });
            }
        })
        .expect("no panics");
        assert_eq!(partial, vec![3, 7]);
    }

    #[test]
    fn child_panic_becomes_err() {
        let r = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
