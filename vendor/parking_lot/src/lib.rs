//! Offline shim for the `parking_lot` API subset this workspace uses:
//! poison-free [`Mutex`] and [`RwLock`] built on `std::sync`. A poisoned
//! std lock (panicking holder) is transparently recovered, matching
//! parking_lot's no-poisoning semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader–writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
