//! Offline shim for the `proptest` 1.x API subset this workspace uses.
//!
//! The `proptest!` macro, range/tuple/`prop::collection::vec` strategies,
//! `prop_flat_map`, and the `prop_assert*`/`prop_assume!` macros are all
//! here, but cases are drawn from a fixed deterministic stream (seeded by
//! FNV-hashing the test name) and failures are **not shrunk** — the
//! failing case's seed and index are reported instead.

/// Number of cases each `proptest!` test runs (matches proptest's
/// default).
pub const CASES: usize = 256;

/// Deterministic per-case RNG (SplitMix64).
pub struct TestRng(u64);

impl TestRng {
    /// Creates an RNG with the given state.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod test_runner {
    //! Outcome type for a single generated case.

    /// Why a case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is re-drawn.
        Reject,
        /// `prop_assert*` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and the built-in strategies.

    use super::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Generates with `self`, then with the strategy `f` derives from
        /// the drawn value (dependent generation).
        fn prop_flat_map<F, S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }

        /// Generates with `self` and transforms the value.
        fn prop_map<F, T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let seed_value = self.base.sample(rng);
            (self.f)(seed_value).sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, T, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.sample(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add((rng.next_u64() % span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.next_f64() as $t;
                    let v = self.start + u * (self.end - self.start);
                    // Guard the half-open bound against rounding.
                    if v >= self.end {
                        self.start
                    } else {
                        v
                    }
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A.0);
    tuple_strategy!(A.0, B.1);
    tuple_strategy!(A.0, B.1, C.2);
    tuple_strategy!(A.0, B.1, C.2, D.3);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

pub mod collection {
    //! `prop::collection::vec`.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Accepted length specifications: a fixed `usize` or `Range<usize>`.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    /// Generates `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Strategy for vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The `prop::` paths used by test files (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

pub mod prelude {
    //! One-stop imports, mirroring `proptest::prelude::*`.

    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Runs `case` until [`CASES`] cases pass, panicking on the first failure.
/// Called by the expansion of [`proptest!`]; not a public API.
pub fn __run_cases<F>(name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), test_runner::TestCaseError>,
{
    let seed = fnv1a(name);
    let mut passed = 0usize;
    let mut rejected = 0usize;
    let mut draw = 0u64;
    while passed < CASES {
        let case_seed = seed.wrapping_add((draw + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        draw += 1;
        match case(&mut TestRng::new(case_seed)) {
            Ok(()) => passed += 1,
            Err(test_runner::TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= 16 * CASES,
                    "proptest `{name}`: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(test_runner::TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case #{passed} \
                     (seed {case_seed:#018x}, no shrinking in offline shim):\n{msg}"
                );
            }
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_cases(stringify!($name), |__rng| {
                    let __strategy = ($($strat,)+);
                    let ($($pat,)+) =
                        $crate::strategy::Strategy::sample(&__strategy, __rng);
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts within a proptest case; failure aborts only this case's run.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality within a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Rejects the current case (re-drawn, not counted as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_stream_is_deterministic() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(
            x in 3usize..17,
            y in -2.0f64..2.0,
            (lo, hi) in (0u64..50).prop_flat_map(|l| (Just(l), (l + 1)..100u64)),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(lo < hi, "flat_map bounds inverted: {lo} vs {hi}");
        }

        #[test]
        fn vec_strategy_respects_lengths(
            v in prop::collection::vec(0.0f32..1.0, 2..9),
            w in prop::collection::vec((0u32..5, 0.0f64..1.0), 4usize),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
            prop_assert!(v.iter().all(|p| (0.0..1.0).contains(p)));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }
}
