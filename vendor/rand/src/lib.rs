//! Offline shim for the `rand` 0.8 API subset this workspace uses.
//!
//! Provides [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — a
//! different stream than upstream's ChaCha12, but deterministic and stable),
//! the [`SeedableRng`]/[`RngCore`]/[`Rng`] traits, and uniform
//! `gen_range` over half-open and inclusive ranges of the primitive types
//! the workspace samples.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 key expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods (blanket-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A uniform sample of the output type (`f64` in `[0,1)`, full-width
    /// integers, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a canonical "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one standard sample.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Scalar types with uniform range sampling.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform in `[lo, hi)`.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform in `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounded sampling (Lemire, single pass —
                // deterministic; the tiny modulo bias is irrelevant here).
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 || span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let x = rng.next_u64() as u128;
                lo.wrapping_add(((x * span) >> 64) as $t)
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty => $std:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                // Clamp keeps rounding from ever producing `hi`.
                let v = lo + (hi - lo) * u;
                if v >= hi { <$t>::max(lo, hi - (hi - lo) * <$t>::EPSILON) } else { v }
            }
            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

uniform_float!(f32 => f32, f64 => f64);

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via SplitMix64. Stream differs from upstream `rand`'s
    /// ChaCha12-based `StdRng`, but is stable across runs and platforms.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// Exposes the raw xoshiro256++ state so callers can persist the
        /// generator's exact stream position (checkpoint/restore).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position previously
        /// captured with [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude`-style glob imports.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u64> = (0..16).map(|_| c.gen_range(0..u64::MAX)).collect();
        let mut a2 = StdRng::seed_from_u64(7);
        let other: Vec<u64> = (0..16).map(|_| a2.gen_range(0..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y: f32 = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&y));
        }
    }

    #[test]
    fn int_ranges_cover_and_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            let i = rng.gen_range(0usize..8);
            seen[i] = true;
            let j = rng.gen_range(0..=3usize);
            assert!(j <= 3);
        }
        assert!(seen.iter().all(|&b| b), "some buckets never sampled");
    }

    #[test]
    fn mean_is_roughly_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn works_through_mut_references() {
        fn sample(rng: &mut impl Rng) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        let a = sample(&mut rng);
        let b = sample(&mut rng);
        assert_ne!(a, b);
    }
}
