//! Offline shim for the `rand_distr` 0.4 API subset this workspace uses:
//! [`Distribution`], [`Gamma`] (Marsaglia–Tsang), and [`LogNormal`]
//! (Box–Muller).

use rand::{Rng, RngCore};

/// A sampleable probability distribution.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Invalid distribution parameters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// One standard-normal draw via Box–Muller.
fn standard_normal<R: RngCore>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Gamma distribution with shape `k` and scale `θ`.
#[derive(Clone, Copy, Debug)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates `Γ(shape, scale)`.
    ///
    /// # Errors
    /// Errors if either parameter is non-positive or non-finite.
    pub fn new(shape: f64, scale: f64) -> Result<Self, ParamError> {
        if !(shape > 0.0 && shape.is_finite()) {
            return Err(ParamError("gamma shape must be positive"));
        }
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(ParamError("gamma scale must be positive"));
        }
        Ok(Gamma { shape, scale })
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        // Marsaglia–Tsang squeeze; the shape<1 case boosts via
        // Γ(k) = Γ(k+1) · U^{1/k}.
        let (shape, boost) = if self.shape < 1.0 {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            (self.shape + 1.0, u.powf(1.0 / self.shape))
        } else {
            (self.shape, 1.0)
        };
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
                return d * v * boost * self.scale;
            }
        }
    }
}

/// Log-normal distribution: `exp(N(μ, σ²))`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates `LogNormal(μ, σ)` (parameters of the underlying normal).
    ///
    /// # Errors
    /// Errors if `σ` is negative or non-finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        if !(sigma >= 0.0 && sigma.is_finite() && mu.is_finite()) {
            return Err(ParamError("lognormal sigma must be non-negative"));
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gamma_mean_matches_shape_times_scale() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = Gamma::new(2.0, 40.0).unwrap();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 80.0).abs() < 3.0, "gamma mean {mean}");
        assert!((0..100).all(|_| g.sample(&mut rng) > 0.0));
    }

    #[test]
    fn gamma_small_shape_is_positive_and_finite() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = Gamma::new(0.3, 1.0).unwrap();
        for _ in 0..5_000 {
            let x = g.sample(&mut rng);
            assert!(x.is_finite() && x >= 0.0, "bad sample {x}");
        }
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let n = 20_000;
        let mut xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[n / 2];
        assert!(
            (median - std::f64::consts::E).abs() < 0.1,
            "lognormal median {median}"
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, -0.1).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
    }
}
