//! Offline shim for the `serde` 1.x API subset this workspace uses.
//!
//! Instead of serde's zero-copy visitor architecture, [`Serialize`] and
//! [`Deserialize`] convert through an owned JSON-like [`Value`] tree. The
//! only format consumer in the workspace is the vendored `serde_json`, so
//! the simplification is observationally equivalent for every call site:
//! `#[derive(Serialize, Deserialize)]` plus `serde_json::{to_string,
//! from_str}` round trips, including `#[serde(default)]` fields.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A JSON number, kept wide enough that `u64` seeds survive round trips.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A finite float.
    Float(f64),
}

impl Number {
    /// Lossy view as `f64` (integers above 2^53 lose precision).
    pub fn as_f64(self) -> f64 {
        match self {
            Number::PosInt(u) => u as f64,
            Number::NegInt(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// Exact view as `u64`, accepting integral floats.
    pub fn as_u64(self) -> Option<u64> {
        match self {
            Number::PosInt(u) => Some(u),
            Number::NegInt(i) => u64::try_from(i).ok(),
            Number::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                Some(f as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// Exact view as `i64`, accepting integral floats.
    pub fn as_i64(self) -> Option<i64> {
        match self {
            Number::PosInt(u) => i64::try_from(u).ok(),
            Number::NegInt(i) => Some(i),
            Number::Float(f)
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Some(f as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// An owned JSON document. Objects preserve insertion order so serialized
/// output is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short name of the value's JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    /// Builds an error from any message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Conversion into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into a JSON value.
    fn to_value(&self) -> Value;
}

/// Conversion from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes `Self` from a JSON value.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// A Value serializes to itself, as in real serde_json — lets callers build
// JSON trees by hand and feed them to the same serialization entry points.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_u64()
                        .and_then(|u| <$t>::try_from(u).ok())
                        .ok_or_else(|| {
                            Error::custom(format!(
                                "number out of range for {}", stringify!($t)
                            ))
                        }),
                    other => Err(Error::custom(format!(
                        "expected {}, found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as i64;
                if x >= 0 {
                    Value::Number(Number::PosInt(x as u64))
                } else {
                    Value::Number(Number::NegInt(x))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => n
                        .as_i64()
                        .and_then(|i| <$t>::try_from(i).ok())
                        .ok_or_else(|| {
                            Error::custom(format!(
                                "number out of range for {}", stringify!($t)
                            ))
                        }),
                    other => Err(Error::custom(format!(
                        "expected {}, found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    other => Err(Error::custom(format!(
                        "expected {}, found {}", stringify!($t), other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!(
                "expected 2-element array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (String::from("start"), self.start.to_value()),
            (String::from("end"), self.end.to_value()),
        ])
    }
}

impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(__private::req_field(v, "start", "Range")?..__private::req_field(v, "end", "Range")?)
    }
}

/// Support routines called by `serde_derive`-generated code. Not a public
/// API.
pub mod __private {
    use super::{Deserialize, Error, Value};

    /// Fetches and deserializes a required object field.
    pub fn req_field<T: Deserialize>(v: &Value, name: &str, ty: &str) -> Result<T, Error> {
        match v.get(name) {
            Some(field) => {
                T::from_value(field).map_err(|e| Error::custom(format!("{ty}.{name}: {e}")))
            }
            None => {
                if let Value::Object(_) = v {
                    Err(Error::custom(format!("{ty}: missing field `{name}`")))
                } else {
                    Err(Error::custom(format!(
                        "{ty}: expected object, found {}",
                        v.kind()
                    )))
                }
            }
        }
    }

    /// Fetches a `#[serde(default)]` field, falling back to `Default` when
    /// the key is absent.
    pub fn opt_field<T: Deserialize + Default>(
        v: &Value,
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        match v.get(name) {
            Some(field) => {
                T::from_value(field).map_err(|e| Error::custom(format!("{ty}.{name}: {e}")))
            }
            None => Ok(T::default()),
        }
    }

    /// Checks an array value of an exact length (tuple structs/variants).
    pub fn expect_array<'a>(v: &'a Value, ty: &str, len: usize) -> Result<&'a [Value], Error> {
        match v {
            Value::Array(items) if items.len() == len => Ok(items),
            Value::Array(items) => Err(Error::custom(format!(
                "{ty}: expected {len} elements, found {}",
                items.len()
            ))),
            other => Err(Error::custom(format!(
                "{ty}: expected array, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_and_vec_round_trip() {
        let x: Option<Vec<u32>> = Some(vec![1, 2, 3]);
        let v = x.to_value();
        let back: Option<Vec<u32>> = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, x);
        let none: Option<f32> = Deserialize::from_value(&Value::Null).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn large_u64_survives() {
        let seed: u64 = u64::MAX - 7;
        let v = seed.to_value();
        let back: u64 = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, seed);
    }

    #[test]
    fn range_round_trips() {
        let r = 3usize..17;
        let back: std::ops::Range<usize> = Deserialize::from_value(&r.to_value()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn type_mismatch_errors() {
        let v = Value::String("nope".into());
        assert!(<u32 as Deserialize>::from_value(&v).is_err());
        assert!(<bool as Deserialize>::from_value(&v).is_err());
    }
}
