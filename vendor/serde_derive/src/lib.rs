//! Offline shim for `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! without syn/quote, generating impls of the vendored `serde`'s
//! value-based traits.
//!
//! Supported input shapes — exactly what this workspace declares:
//! * structs with named fields (honouring `#[serde(default)]`),
//! * tuple structs (newtypes serialize transparently, wider ones as
//!   arrays),
//! * enums with unit / newtype / tuple / struct variants, using serde's
//!   externally-tagged JSON representation.
//!
//! Generics are not supported and produce a compile error naming the type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    data: Data,
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse_input(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_input(ts: TokenStream) -> Input {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim: generic type `{name}` is not supported");
    }
    let data = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            _ => panic!("serde shim: unit struct `{name}` is not supported"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            _ => panic!("serde shim: malformed enum `{name}`"),
        },
        other => panic!("serde shim: cannot derive for `{other}` items"),
    };
    Input { name, data }
}

/// Skips any `#[...]` attributes starting at `*i`, returning whether a
/// `#[serde(default)]` was among them.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut has_default = false;
    loop {
        match (toks.get(*i), toks.get(*i + 1)) {
            (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                has_default |= attr_is_serde_default(g.stream());
                *i += 2;
            }
            _ => return has_default,
        }
    }
}

fn attr_is_serde_default(attr: TokenStream) -> bool {
    let mut toks = attr.into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "default"))
        }
        _ => false,
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim: expected identifier, found {other:?}"),
    }
}

/// Skips tokens until a top-level `,` (or end), tracking `<...>` depth so
/// commas inside generic arguments don't split a field.
fn skip_until_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle: i32 = 0;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let default = skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_vis(&toks, &mut i);
        let name = expect_ident(&toks, &mut i);
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim: expected `:` after field `{name}`, found {other:?}"),
        }
        skip_until_comma(&toks, &mut i);
        i += 1; // the comma (or one past the end)
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        skip_until_comma(&toks, &mut i);
        i += 1;
        n += 1;
    }
    n
}

fn parse_variants(ts: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the trailing comma.
        skip_until_comma(&toks, &mut i);
        i += 1;
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let mut s = format!(
                "let mut __f: Vec<(String, ::serde::Value)> = Vec::with_capacity({});\n",
                fields.len()
            );
            for f in fields {
                s.push_str(&format!(
                    "__f.push((String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Object(__f)");
            s
        }
        Data::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__x0) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Serialize::to_value(__x0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__x{k}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::new();
                        for f in fields {
                            inner.push_str(&format!(
                                "__f.push((String::from(\"{0}\"), ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{\n\
                             let mut __f: Vec<(String, ::serde::Value)> = Vec::with_capacity({});\n\
                             {inner}\
                             ::serde::Value::Object(vec![(String::from(\"{vn}\"), ::serde::Value::Object(__f))])\n\
                             }}\n",
                            binds.join(", "),
                            fields.len()
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.data {
        Data::NamedStruct(fields) => {
            let inits: Vec<String> = fields.iter().map(|f| named_field_init(f, name)).collect();
            format!("Ok({name} {{\n{}\n}})", inits.join(",\n"))
        }
        Data::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?"))
                .collect();
            format!(
                "let __a = ::serde::__private::expect_array(__v, \"{name}\", {n})?;\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                        tagged_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::Deserialize::from_value(&__a[{k}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let __a = ::serde::__private::expect_array(__inner, \"{name}::{vn}\", {n})?;\n\
                             Ok({name}::{vn}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| named_variant_field_init(f, name, vn))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => Ok({name}::{vn} {{\n{}\n}}),\n",
                            inits.join(",\n")
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__tag, __inner) = &__entries[0];\n\
                 let _ = __inner;\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 __other => Err(::serde::Error::custom(format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }}\n\
                 }},\n\
                 __other => Err(::serde::Error::custom(format!(\"expected {name} as string or single-key object, found {{}}\", __other.kind()))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn named_field_init(f: &Field, ty: &str) -> String {
    if f.default {
        format!(
            "{0}: ::serde::__private::opt_field(__v, \"{0}\", \"{ty}\")?",
            f.name
        )
    } else {
        format!(
            "{0}: ::serde::__private::req_field(__v, \"{0}\", \"{ty}\")?",
            f.name
        )
    }
}

fn named_variant_field_init(f: &Field, ty: &str, variant: &str) -> String {
    if f.default {
        format!(
            "{0}: ::serde::__private::opt_field(__inner, \"{0}\", \"{ty}::{variant}\")?",
            f.name
        )
    } else {
        format!(
            "{0}: ::serde::__private::req_field(__inner, \"{0}\", \"{ty}::{variant}\")?",
            f.name
        )
    }
}
