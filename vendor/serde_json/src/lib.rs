//! Offline shim for the `serde_json` 1.x API subset this workspace uses:
//! [`to_string`] / [`to_string_pretty`] / [`from_str`] over the vendored
//! `serde`'s owned [`Value`] tree.

use serde::Number;
pub use serde::Value;
use std::fmt;

/// Serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts a value to its [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------- writing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::PosInt(u) => out.push_str(&u.to_string()),
        Number::NegInt(i) => out.push_str(&i.to_string()),
        // `{:?}` is Rust's shortest round-trip float form; non-finite
        // floats have no JSON representation, so follow serde_json and
        // emit null.
        Number::Float(f) if f.is_finite() => out.push_str(&format!("{f:?}")),
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_keyword("null").map(|_| Value::Null),
            Some(b't') => self.eat_keyword("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false").map(|_| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Decode a UTF-16 surrogate pair if present.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // byte sequence is valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty rest");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut cp: u32 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("invalid \\u escape")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n = if is_float {
            Number::Float(text.parse().map_err(|_| self.err("invalid number"))?)
        } else if text.starts_with('-') {
            Number::NegInt(text.parse().map_err(|_| self.err("invalid number"))?)
        } else {
            Number::PosInt(text.parse().map_err(|_| self.err("invalid number"))?)
        };
        Ok(Value::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_text() {
        let v = Value::Object(vec![
            ("n".into(), Value::Number(Number::PosInt(42))),
            ("x".into(), Value::Number(Number::Float(0.1))),
            ("neg".into(), Value::Number(Number::NegInt(-7))),
            (
                "arr".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("s".into(), Value::String("a\"b\\c\nd".into())),
        ]);
        let mut text = String::new();
        write_value(&v, &mut text, None, 0);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Array(vec![
            Value::Object(vec![("k".into(), Value::Number(Number::PosInt(1)))]),
            Value::Array(vec![]),
        ]);
        let mut text = String::new();
        write_value(&v, &mut text, Some(2), 0);
        assert!(text.contains('\n'));
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn float_shortest_form_round_trips() {
        let x = 0.01f32 as f64;
        let mut text = String::new();
        write_number(Number::Float(x), &mut text);
        let back = parse(&text).unwrap();
        assert_eq!(back, Value::Number(Number::Float(x)));
    }

    #[test]
    fn unicode_escapes_decode() {
        let src = "\"\\u00e9 \\ud83d\\ude00\"";
        let escaped = parse(src).unwrap();
        assert_eq!(escaped, Value::String("\u{e9} \u{1f600}".into()));
        let raw = parse("\"\u{e9}\u{1f600}\"").unwrap();
        assert_eq!(raw, Value::String("\u{e9}\u{1f600}".into()));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
    }
}
